package rdma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"rstore/internal/simnet"
)

// QPState is the lifecycle state of a queue pair.
type QPState uint8

// Queue pair states.
const (
	QPReady QPState = iota + 1
	QPError
	QPClosed
)

// String names the state.
func (s QPState) String() string {
	switch s {
	case QPReady:
		return "ready"
	case QPError:
		return "error"
	case QPClosed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// SendWR is a work request posted to the send queue.
type SendWR struct {
	WRID uint64
	Op   OpCode

	// Local is the local buffer: payload source for SEND/WRITE, destination
	// for READ, and the 8-byte result buffer for atomics.
	Local SGE

	// RemoteKey and RemoteAddr name the target window for one-sided ops.
	// RemoteAddr is a byte offset within the remote region.
	RemoteKey  uint32
	RemoteAddr uint64

	// Imm is delivered to the responder's receive completion for
	// OpWriteImm, and for OpSend when HasImm is set.
	Imm    uint32
	HasImm bool

	// Add is the FETCH_ADD operand; Compare and Swap drive CMP_SWAP.
	Add     uint64
	Compare uint64
	Swap    uint64

	// StartV is the virtual time at which the request is considered
	// posted. Zero means "as soon as the NIC is free", i.e. immediately
	// after the previous request on this QP.
	StartV simnet.VTime
}

// RecvWR is a work request posted to the receive queue.
type RecvWR struct {
	WRID  uint64
	Local SGE
}

type postedRecv struct {
	wr  RecvWR
	buf []byte
}

// QPStats counts per-QP traffic, used by the benchmark harness.
type QPStats struct {
	SendOps     int64
	SendBytes   int64
	RecvOps     int64
	OneSided    int64
	Atomics     int64
	Retransmits int64
	Errors      int64
	LastDoneV   simnet.VTime
	FirstPostV  simnet.VTime
}

// QP is a reliable connected queue pair. Send work requests are executed
// strictly in order by a dedicated worker; one-sided operations touch the
// peer's registered memory directly with no peer-side goroutine involved.
type QP struct {
	dev     *Device
	pd      *PD
	sendCQ  *CQ
	recvCQ  *CQ
	service string

	sendCh chan SendWR
	recvCh chan postedRecv

	mu    sync.Mutex
	state QPState
	vnow  simnet.VTime
	stats QPStats

	peer     *QP
	initialV simnet.VTime
	stopped  chan struct{}
	wg       sync.WaitGroup
}

func newQP(dev *Device, pd *PD, service string, sendDepth, recvDepth int) *QP {
	if sendDepth <= 0 {
		sendDepth = 256
	}
	if recvDepth <= 0 {
		recvDepth = 1024
	}
	return &QP{
		// A new QP joins the fabric's virtual timeline at its creation
		// frontier rather than at zero, so it does not appear to queue
		// behind traffic that finished before it existed.
		initialV: dev.net.fabric.VNow(),
		dev:      dev,
		pd:       pd,
		sendCQ:   NewCQ(sendDepth * 4),
		recvCQ:   NewCQ(recvDepth * 4),
		service:  service,
		sendCh:   make(chan SendWR, sendDepth),
		recvCh:   make(chan postedRecv, recvDepth),
		state:    QPReady,
		stopped:  make(chan struct{}),
	}
}

func (q *QP) start() {
	q.wg.Add(1)
	go q.worker()
}

// Device returns the local device.
func (q *QP) Device() *Device { return q.dev }

// PD returns the protection domain the QP validates rkeys against.
func (q *QP) PD() *PD { return q.pd }

// SendCQ returns the completion queue for send-side work.
func (q *QP) SendCQ() *CQ { return q.sendCQ }

// RecvCQ returns the completion queue for receive-side work.
func (q *QP) RecvCQ() *CQ { return q.recvCQ }

// RemoteNode returns the fabric node of the connected peer.
func (q *QP) RemoteNode() simnet.NodeID {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.peer == nil {
		return -1
	}
	return q.peer.dev.node
}

// State returns the current lifecycle state.
func (q *QP) State() QPState {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.state
}

// VNow returns the QP's virtual-time cursor: the modeled completion time of
// the most recent operation.
func (q *QP) VNow() simnet.VTime {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.vnow
}

// Stats returns a snapshot of the QP's counters.
func (q *QP) Stats() QPStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

func (q *QP) advanceVNow(v simnet.VTime) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.vnow = maxVT(q.vnow, v)
	q.stats.LastDoneV = maxVT(q.stats.LastDoneV, v)
}

func maxVT(a, b simnet.VTime) simnet.VTime {
	if a > b {
		return a
	}
	return b
}

func (q *QP) setError() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.state == QPReady {
		q.state = QPError
	}
	q.stats.Errors++
	q.dev.ctr.errors.Inc()
}

// PostSend queues a send-side work request. It blocks if the send queue is
// full (back-pressure) and fails fast if the QP is not ready or the request
// is locally malformed.
func (q *QP) PostSend(wr SendWR) error {
	if st := q.State(); st != QPReady {
		return fmt.Errorf("post send: %w: %v", ErrQPState, st)
	}
	if err := q.validateSend(&wr); err != nil {
		return fmt.Errorf("post send: %w", err)
	}
	select {
	case q.sendCh <- wr:
		return nil
	case <-q.stopped:
		return fmt.Errorf("post send: %w: %v", ErrQPState, QPClosed)
	}
}

func (q *QP) validateSend(wr *SendWR) error {
	switch wr.Op {
	case OpSend, OpWrite, OpWriteImm, OpRead:
		if _, err := wr.Local.buf(q.pd); err != nil {
			return err
		}
		if wr.Op == OpRead && !wr.Local.MR.access.Has(AccessLocalWrite) {
			return fmt.Errorf("%w: READ destination lacks local-write", ErrBadAccess)
		}
	case OpFetchAdd, OpCmpSwap:
		if wr.Local.Len != 8 {
			return fmt.Errorf("%w: atomic result buffer must be 8 bytes", ErrBounds)
		}
		if _, err := wr.Local.buf(q.pd); err != nil {
			return err
		}
		if !wr.Local.MR.access.Has(AccessLocalWrite) {
			return fmt.Errorf("%w: atomic result buffer lacks local-write", ErrBadAccess)
		}
		if wr.RemoteAddr%8 != 0 {
			return ErrUnaligned
		}
	default:
		return fmt.Errorf("%w: bad opcode %v", ErrBadAccess, wr.Op)
	}
	return nil
}

// PostRecv queues a receive buffer for incoming SEND (and the completion of
// WRITE_WITH_IMM). It never blocks: a full receive queue is an error.
func (q *QP) PostRecv(wr RecvWR) error {
	if st := q.State(); st != QPReady {
		return fmt.Errorf("post recv: %w: %v", ErrQPState, st)
	}
	buf, err := wr.Local.buf(q.pd)
	if err != nil {
		// Zero-length receives (for WRITE_WITH_IMM doorbells) are allowed
		// with a nil region.
		if wr.Local.MR != nil || wr.Local.Len != 0 {
			return fmt.Errorf("post recv: %w", err)
		}
		buf = nil
	}
	if wr.Local.MR != nil && !wr.Local.MR.access.Has(AccessLocalWrite) {
		return fmt.Errorf("post recv: %w: buffer lacks local-write", ErrBadAccess)
	}
	select {
	case q.recvCh <- postedRecv{wr: wr, buf: buf}:
		return nil
	default:
		return fmt.Errorf("post recv: %w", ErrRecvQueueFull)
	}
}

// Close tears the QP down. Pending and future work requests complete with
// StatusFlushed. Close is idempotent and waits for the worker to drain.
func (q *QP) Close() {
	q.mu.Lock()
	if q.state == QPClosed {
		q.mu.Unlock()
		return
	}
	q.state = QPClosed
	q.mu.Unlock()
	close(q.stopped)
	q.wg.Wait()
}

// worker executes send work requests in order.
func (q *QP) worker() {
	defer q.wg.Done()
	vcursor := q.initialV
	for {
		select {
		case wr := <-q.sendCh:
			vcursor = q.execute(wr, vcursor)
		case <-q.stopped:
			q.flush()
			return
		}
	}
}

// flush drains both queues with StatusFlushed completions.
func (q *QP) flush() {
	for {
		select {
		case wr := <-q.sendCh:
			q.complete(WC{WRID: wr.WRID, Op: wr.Op, Status: StatusFlushed, Err: fmt.Errorf("%w: flushed", ErrQPState)})
		default:
			goto recvs
		}
	}
recvs:
	for {
		select {
		case pr := <-q.recvCh:
			q.recvCQ.push(WC{WRID: pr.wr.WRID, Op: OpRecv, Status: StatusFlushed, Err: fmt.Errorf("%w: flushed", ErrQPState)})
		default:
			return
		}
	}
}

func (q *QP) complete(wc WC) {
	if wc.Err != nil && wc.Status == StatusSuccess {
		wc.Status = StatusLocalError
	}
	q.sendCQ.push(wc)
	q.advanceVNow(wc.DoneV)
}

// failOp records an errored operation, moves the QP to the error state, and
// completes the WR with the given status.
func (q *QP) failOp(wr SendWR, issue simnet.VTime, status Status, err error) simnet.VTime {
	q.setError()
	q.complete(WC{
		WRID:    wr.WRID,
		Op:      wr.Op,
		Status:  status,
		Err:     err,
		PostedV: issue,
		DoneV:   issue,
	})
	return issue
}

// execute runs one work request and returns the updated NIC-time cursor.
//
// Virtual-time semantics: a request with StartV == 0 issues at its QP's
// previous completion (reliable-connected ordering; a fresh QP starts at
// the fabric frontier captured at creation). An explicit StartV pins the
// issue no earlier than that point, used to chain cross-actor causality
// (e.g. an RPC response departs after the request arrived).
func (q *QP) execute(wr SendWR, vcursor simnet.VTime) simnet.VTime {
	costs := q.dev.Costs()
	issue := maxVT(wr.StartV, vcursor)
	wireStart := issue.Add(costs.PostOp)

	q.mu.Lock()
	peer := q.peer
	if q.stats.FirstPostV == 0 {
		q.stats.FirstPostV = issue
	}
	q.stats.SendOps++
	q.stats.SendBytes += int64(wr.Local.Len)
	state := q.state
	q.mu.Unlock()
	q.dev.ctr.ops.Inc()
	q.dev.ctr.bytes.Add(int64(wr.Local.Len))

	if state != QPReady {
		q.complete(WC{WRID: wr.WRID, Op: wr.Op, Status: StatusFlushed, Err: fmt.Errorf("%w: %v", ErrQPState, state), PostedV: issue, DoneV: issue})
		return vcursor
	}
	if peer == nil || peer.State() == QPClosed {
		q.failOp(wr, issue, StatusRetryExceeded, fmt.Errorf("%w: peer gone", ErrQPState))
		return vcursor
	}

	var (
		done simnet.VTime
		err  error
	)
	switch wr.Op {
	case OpSend:
		done, err = q.execSend(wr, peer, wireStart)
	case OpWrite, OpWriteImm:
		done, err = q.execWrite(wr, peer, wireStart)
	case OpRead:
		done, err = q.execRead(wr, peer, wireStart)
	case OpFetchAdd, OpCmpSwap:
		done, err = q.execAtomic(wr, peer, wireStart)
	default:
		err = fmt.Errorf("%w: opcode %v", ErrBadAccess, wr.Op)
	}
	if err != nil {
		status := classify(err)
		q.failOp(wr, issue, status, err)
		return maxVT(vcursor, done)
	}

	wc := WC{
		WRID:    wr.WRID,
		Op:      wr.Op,
		Status:  StatusSuccess,
		ByteLen: wr.Local.Len,
		PostedV: issue,
		DoneV:   done,
	}
	if wr.Op == OpFetchAdd || wr.Op == OpCmpSwap {
		wc.Old = binary.LittleEndian.Uint64(q.mustLocal(wr))
	}
	q.complete(wc)
	// Reliable-connected ordering: the next request issues no earlier than
	// this one completed.
	return maxVT(vcursor, done)
}

// classify maps an execution error to a completion status.
func classify(err error) Status {
	switch {
	case isAny(err, ErrBadRKey, ErrBadAccess, ErrBounds, ErrPDMismatch, ErrRecvTooSmall, ErrUnaligned):
		return StatusRemoteAccessError
	case isAny(err, ErrTimeout):
		return StatusRNRTimeout
	case isAny(err, simnet.ErrNodeDown, simnet.ErrPartitioned, simnet.ErrDropped):
		// Fabric-level failures: the peer is unreachable (or retransmission
		// was exhausted). The QP transitions to the error state, exactly as
		// an RC QP does when its retry counter runs out.
		return StatusRetryExceeded
	default:
		return StatusRetryExceeded
	}
}

func isAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}

// mustLocal returns the local window; validation already ran at post time.
func (q *QP) mustLocal(wr SendWR) []byte {
	buf, err := wr.Local.buf(q.pd)
	if err != nil {
		return nil
	}
	return buf
}

// xfer runs one fabric transfer with RC-style retransmission: a transfer
// lost to transient fault injection (simnet.ErrDropped) is retried up to
// Costs.RetryCount times, each attempt delayed by RetryBackoff in virtual
// time. Shifting the start time also changes the (deterministic) drop
// decision for the retransmission, exactly as a real retransmission is an
// independent trial. Persistent failures (node down, partition) and
// exhausted retries propagate to the caller.
func (q *QP) xfer(from, to simnet.NodeID, n int, start simnet.VTime) (simnet.VTime, error) {
	f := q.dev.net.fabric
	costs := q.dev.Costs()
	for attempt := 0; ; attempt++ {
		done, err := f.Transfer(from, to, n, start)
		if err == nil || !errors.Is(err, simnet.ErrDropped) || attempt >= costs.RetryCount {
			return done, err
		}
		q.mu.Lock()
		q.stats.Retransmits++
		q.mu.Unlock()
		q.dev.ctr.retransmits.Inc()
		start = start.Add(costs.RetryBackoff)
	}
}

// wire models a round trip: payload-sized transfer out, header-sized
// acknowledgement back (or the reverse for READ).
func (q *QP) wire(peer *QP, outBytes, backBytes int, start simnet.VTime) (simnet.VTime, error) {
	t1, err := q.xfer(q.dev.node, peer.dev.node, outBytes, start)
	if err != nil {
		return start, fmt.Errorf("wire: %w", err)
	}
	t2, err := q.xfer(peer.dev.node, q.dev.node, backBytes, t1)
	if err != nil {
		return t1, fmt.Errorf("wire ack: %w", err)
	}
	return t2, nil
}

func (q *QP) execWrite(wr SendWR, peer *QP, start simnet.VTime) (simnet.VTime, error) {
	src := q.mustLocal(wr)
	mr, err := peer.dev.lookupMR(wr.RemoteKey, peer.pd, AccessRemoteWrite)
	if err != nil {
		return start, err
	}
	dst, err := mr.slice(wr.RemoteAddr, len(src))
	if err != nil {
		return start, err
	}
	hdr := q.dev.Costs().HeaderBytes
	done, err := q.wire(peer, len(src)+hdr, hdr, start)
	if err != nil {
		return done, err
	}
	q.dev.net.copyMu.Lock()
	copy(dst, src)
	q.dev.net.copyMu.Unlock()
	q.mu.Lock()
	q.stats.OneSided++
	q.mu.Unlock()
	q.dev.ctr.oneSided.Inc()
	peer.dev.ctr.servedOps.Inc()
	peer.dev.ctr.servedBytes.Add(int64(len(src)))

	if wr.Op == OpWriteImm {
		// WRITE_WITH_IMM consumes a receive at the responder and raises a
		// completion there carrying the immediate.
		pr, err := peer.takeRecv(q.dev.Costs().RNRTimeout)
		if err != nil {
			return done, err
		}
		arrive := done - simnet.VTime(q.dev.net.fabric.Params().PropDelay)
		peer.recvCQ.push(WC{
			WRID:    pr.wr.WRID,
			Op:      OpRecv,
			Status:  StatusSuccess,
			ByteLen: len(src),
			Imm:     wr.Imm,
			HasImm:  true,
			PostedV: start,
			DoneV:   arrive,
		})
		peer.advanceVNow(arrive)
		peer.mu.Lock()
		peer.stats.RecvOps++
		peer.mu.Unlock()
		peer.dev.ctr.recvOps.Inc()
	}
	return done, nil
}

func (q *QP) execRead(wr SendWR, peer *QP, start simnet.VTime) (simnet.VTime, error) {
	dst := q.mustLocal(wr)
	mr, err := peer.dev.lookupMR(wr.RemoteKey, peer.pd, AccessRemoteRead)
	if err != nil {
		return start, err
	}
	src, err := mr.slice(wr.RemoteAddr, len(dst))
	if err != nil {
		return start, err
	}
	hdr := q.dev.Costs().HeaderBytes
	// Request header out, data back.
	t1, err := q.xfer(q.dev.node, peer.dev.node, hdr, start)
	if err != nil {
		return start, fmt.Errorf("read request: %w", err)
	}
	done, err := q.xfer(peer.dev.node, q.dev.node, len(dst)+hdr, t1)
	if err != nil {
		return t1, fmt.Errorf("read response: %w", err)
	}
	q.dev.net.copyMu.Lock()
	copy(dst, src)
	q.dev.net.copyMu.Unlock()
	q.mu.Lock()
	q.stats.OneSided++
	q.mu.Unlock()
	q.dev.ctr.oneSided.Inc()
	peer.dev.ctr.servedOps.Inc()
	peer.dev.ctr.servedBytes.Add(int64(len(dst)))
	return done, nil
}

func (q *QP) execSend(wr SendWR, peer *QP, start simnet.VTime) (simnet.VTime, error) {
	src := q.mustLocal(wr)
	pr, err := peer.takeRecv(q.dev.Costs().RNRTimeout)
	if err != nil {
		return start, err
	}
	if len(pr.buf) < len(src) {
		peer.recvCQ.push(WC{WRID: pr.wr.WRID, Op: OpRecv, Status: StatusRemoteAccessError, Err: ErrRecvTooSmall, PostedV: start, DoneV: start})
		return start, fmt.Errorf("%w: send %d into recv %d", ErrRecvTooSmall, len(src), len(pr.buf))
	}
	hdr := q.dev.Costs().HeaderBytes
	done, err := q.wire(peer, len(src)+hdr, hdr, start)
	if err != nil {
		return done, err
	}
	q.dev.net.copyMu.Lock()
	copy(pr.buf, src)
	q.dev.net.copyMu.Unlock()
	arrive := done - simnet.VTime(q.dev.net.fabric.Params().PropDelay)
	wc := WC{
		WRID:    pr.wr.WRID,
		Op:      OpRecv,
		Status:  StatusSuccess,
		ByteLen: len(src),
		PostedV: start,
		DoneV:   arrive,
	}
	if wr.HasImm {
		wc.Imm, wc.HasImm = wr.Imm, true
	}
	peer.recvCQ.push(wc)
	peer.advanceVNow(arrive)
	peer.mu.Lock()
	peer.stats.RecvOps++
	peer.mu.Unlock()
	peer.dev.ctr.recvOps.Inc()
	return done, nil
}

func (q *QP) execAtomic(wr SendWR, peer *QP, start simnet.VTime) (simnet.VTime, error) {
	res := q.mustLocal(wr)
	mr, err := peer.dev.lookupMR(wr.RemoteKey, peer.pd, AccessRemoteAtomic)
	if err != nil {
		return start, err
	}
	word, err := mr.slice(wr.RemoteAddr, 8)
	if err != nil {
		return start, err
	}
	hdr := q.dev.Costs().HeaderBytes
	done, err := q.wire(peer, hdr+16, hdr+8, start)
	if err != nil {
		return done, err
	}
	// Atomics are linearized with every other copy and atomic in the
	// network (stronger than the NIC guarantee, which only orders atomics
	// against atomics — the stronger order keeps the Go runtime's data
	// model satisfied).
	q.dev.net.copyMu.Lock()
	old := binary.LittleEndian.Uint64(word)
	switch wr.Op {
	case OpFetchAdd:
		binary.LittleEndian.PutUint64(word, old+wr.Add)
	case OpCmpSwap:
		if old == wr.Compare {
			binary.LittleEndian.PutUint64(word, wr.Swap)
		}
	}
	q.dev.net.copyMu.Unlock()
	binary.LittleEndian.PutUint64(res, old)
	q.mu.Lock()
	q.stats.Atomics++
	q.mu.Unlock()
	q.dev.ctr.atomics.Inc()
	peer.dev.ctr.servedOps.Inc()
	peer.dev.ctr.servedBytes.Add(8)
	return done, nil
}

// takeRecv pops a posted receive, waiting up to timeout (RNR semantics).
func (q *QP) takeRecv(timeout time.Duration) (postedRecv, error) {
	select {
	case pr := <-q.recvCh:
		return pr, nil
	default:
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case pr := <-q.recvCh:
		return pr, nil
	case <-q.stopped:
		return postedRecv{}, fmt.Errorf("%w: responder closed", ErrQPState)
	case <-timer.C:
		return postedRecv{}, fmt.Errorf("%w: no receive posted", ErrTimeout)
	}
}
