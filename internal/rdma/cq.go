package rdma

import (
	"context"
	"fmt"

	"rstore/internal/simnet"
)

// OpCode identifies the verb an entry completes.
type OpCode uint8

// Work request opcodes.
const (
	OpSend OpCode = iota + 1
	OpRecv
	OpWrite
	OpWriteImm
	OpRead
	OpFetchAdd
	OpCmpSwap
)

// String names the opcode.
func (o OpCode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_IMM"
	case OpRead:
		return "READ"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpCmpSwap:
		return "CMP_SWAP"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// Status is a completion status, mirroring verbs WC status semantics.
type Status uint8

// Completion statuses.
const (
	StatusSuccess Status = iota
	StatusLocalError
	StatusRemoteAccessError
	StatusRetryExceeded
	StatusFlushed
	StatusRNRTimeout
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusLocalError:
		return "local-error"
	case StatusRemoteAccessError:
		return "remote-access-error"
	case StatusRetryExceeded:
		return "retry-exceeded"
	case StatusFlushed:
		return "flushed"
	case StatusRNRTimeout:
		return "rnr-timeout"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// WC is a work completion.
type WC struct {
	WRID    uint64
	Op      OpCode
	Status  Status
	Err     error // nil iff Status == StatusSuccess
	ByteLen int
	// Imm carries the immediate value of a SEND/WRITE_WITH_IMM, valid when
	// HasImm is true (receive side only).
	Imm    uint32
	HasImm bool
	// Old carries the prior value of the target word for atomics.
	Old uint64
	// PostedV and DoneV are the modeled virtual times at which the work
	// request was issued and completed.
	PostedV simnet.VTime
	DoneV   simnet.VTime
}

// Latency returns the modeled service time of the operation.
func (w WC) Latency() simnet.VTime { return w.DoneV - w.PostedV }

// CQ is a completion queue. Producers block when the queue is full
// (back-pressure rather than hardware-style fatal overflow).
type CQ struct {
	ch chan WC
}

// NewCQ creates a completion queue of the given depth.
func NewCQ(depth int) *CQ {
	if depth <= 0 {
		depth = 1024
	}
	return &CQ{ch: make(chan WC, depth)}
}

func (c *CQ) push(wc WC) { c.ch <- wc }

// Poll drains up to max entries without blocking.
func (c *CQ) Poll(max int) []WC {
	var out []WC
	for len(out) < max {
		select {
		case wc := <-c.ch:
			out = append(out, wc)
		default:
			return out
		}
	}
	return out
}

// Next blocks for the next completion or until the context is done.
func (c *CQ) Next(ctx context.Context) (WC, error) {
	select {
	case wc := <-c.ch:
		return wc, nil
	case <-ctx.Done():
		return WC{}, ctx.Err()
	}
}

// Len reports how many completions are queued.
func (c *CQ) Len() int { return len(c.ch) }
