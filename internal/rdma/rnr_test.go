package rdma

import (
	"context"
	"errors"
	"testing"
	"time"

	"rstore/internal/simnet"
)

// fastRNRPair builds a connected pair whose RNR timeout is milliseconds,
// so receiver-not-ready paths can be exercised quickly.
func fastRNRPair(t *testing.T) *pair {
	t.Helper()
	f := simnet.NewFabric(2, simnet.DefaultParams())
	costs := DefaultCosts()
	costs.RNRTimeout = 50 * time.Millisecond
	n := NewNetworkWithCosts(f, costs)
	sd, err := n.OpenDevice(1)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	lis, err := sd.Listen("svc", nil, ConnOpts{})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	cd, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	cqp, err := cd.Dial(context.Background(), 1, "svc", nil, ConnOpts{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	sqp, err := lis.Accept(context.Background())
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	p := &pair{
		net: n, clientDev: cd, serverDev: sd,
		client: cqp, server: sqp,
		clientPD: cqp.PD(), serverPD: sqp.PD(),
		lis: lis,
	}
	t.Cleanup(func() {
		cqp.Close()
		sqp.Close()
		lis.Close()
	})
	return p
}

func TestSendWithoutRecvTimesOut(t *testing.T) {
	p := fastRNRPair(t)
	buf := p.mustRegister(t, p.clientPD, 16, 0)
	if err := p.client.PostSend(SendWR{WRID: 1, Op: OpSend, Local: SGE{MR: buf, Len: 8}}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	wc := pollOne(t, p.client.SendCQ())
	if wc.Status != StatusRNRTimeout {
		t.Fatalf("status = %v (%v), want rnr-timeout", wc.Status, wc.Err)
	}
	if !errors.Is(wc.Err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", wc.Err)
	}
	if st := p.client.State(); st != QPError {
		t.Errorf("QP state = %v, want error", st)
	}
}

func TestWriteImmWithoutRecvTimesOut(t *testing.T) {
	p := fastRNRPair(t)
	remote := p.mustRegister(t, p.serverPD, 64, AccessRemoteWrite)
	local := p.mustRegister(t, p.clientPD, 64, 0)
	if err := p.client.PostSend(SendWR{
		WRID: 2, Op: OpWriteImm,
		Local:     SGE{MR: local, Len: 8},
		RemoteKey: remote.RKey(), Imm: 5,
	}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	wc := pollOne(t, p.client.SendCQ())
	if wc.Status != StatusRNRTimeout {
		t.Fatalf("status = %v (%v), want rnr-timeout", wc.Status, wc.Err)
	}
	// The write itself landed before the doorbell failed — WRITE_WITH_IMM
	// places data first, then consumes a receive.
	if got := remote.Bytes()[0]; got != local.Bytes()[0] {
		t.Errorf("data not placed before RNR failure")
	}
}

func TestRNRWaitSucceedsWhenRecvArrives(t *testing.T) {
	// A SEND posted before any RECV completes once the responder posts one
	// within the RNR window.
	p := fastRNRPair(t)
	sendBuf := p.mustRegister(t, p.clientPD, 16, 0)
	recvBuf := p.mustRegister(t, p.serverPD, 16, AccessLocalWrite)
	copy(sendBuf.Bytes(), []byte("late"))

	if err := p.client.PostSend(SendWR{WRID: 3, Op: OpSend, Local: SGE{MR: sendBuf, Len: 4}}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	time.Sleep(10 * time.Millisecond) // inside the 50ms RNR window
	if err := p.server.PostRecv(RecvWR{WRID: 4, Local: SGE{MR: recvBuf, Len: 16}}); err != nil {
		t.Fatalf("PostRecv: %v", err)
	}
	wc := pollOne(t, p.client.SendCQ())
	if wc.Status != StatusSuccess {
		t.Fatalf("send wc = %v (%v)", wc.Status, wc.Err)
	}
	rwc := pollOne(t, p.server.RecvCQ())
	if rwc.Status != StatusSuccess || string(recvBuf.Bytes()[:4]) != "late" {
		t.Fatalf("recv wc = %+v, buf = %q", rwc, recvBuf.Bytes()[:4])
	}
}

func TestErrorsIncrementStats(t *testing.T) {
	p := fastRNRPair(t)
	buf := p.mustRegister(t, p.clientPD, 16, 0)
	if err := p.client.PostSend(SendWR{WRID: 1, Op: OpSend, Local: SGE{MR: buf, Len: 8}}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	pollOne(t, p.client.SendCQ())
	if st := p.client.Stats(); st.Errors == 0 {
		t.Errorf("stats.Errors = 0 after RNR failure")
	}
}

func TestRecvQueueFull(t *testing.T) {
	f := simnet.NewFabric(2, simnet.DefaultParams())
	n := NewNetwork(f)
	sd, err := n.OpenDevice(1)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	lis, err := sd.Listen("svc", nil, ConnOpts{RecvDepth: 2})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	cd, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	if _, err := cd.Dial(context.Background(), 1, "svc", nil, ConnOpts{}); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	sqp, err := lis.Accept(context.Background())
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	defer sqp.Close()
	buf, err := sqp.PD().RegisterMemory(make([]byte, 64), AccessLocalWrite)
	if err != nil {
		t.Fatalf("RegisterMemory: %v", err)
	}
	var lastErr error
	for i := 0; i < 4; i++ {
		lastErr = sqp.PostRecv(RecvWR{WRID: uint64(i), Local: SGE{MR: buf, Len: 16}})
	}
	if !errors.Is(lastErr, ErrRecvQueueFull) {
		t.Errorf("4th recv on depth-2 queue = %v, want ErrRecvQueueFull", lastErr)
	}
}

// TestRCOrderingProperty: completions on one QP surface in post order with
// non-decreasing virtual completion times — reliable-connected semantics.
func TestRCOrderingProperty(t *testing.T) {
	p := newPair(t)
	remote := p.mustRegister(t, p.serverPD, 1<<20, AccessRemoteRead|AccessRemoteWrite)
	local := p.mustRegister(t, p.clientPD, 1<<20, AccessLocalWrite)

	const ops = 64
	sizes := []int{8, 4 << 10, 256 << 10, 64}
	for i := 0; i < ops; i++ {
		op := OpWrite
		if i%3 == 0 {
			op = OpRead
		}
		if err := p.client.PostSend(SendWR{
			WRID: uint64(i), Op: op,
			Local:     SGE{MR: local, Len: sizes[i%len(sizes)]},
			RemoteKey: remote.RKey(),
		}); err != nil {
			t.Fatalf("PostSend %d: %v", i, err)
		}
	}
	var lastDone simnet.VTime
	for i := 0; i < ops; i++ {
		wc := pollOne(t, p.client.SendCQ())
		if wc.Status != StatusSuccess {
			t.Fatalf("op %d: %v (%v)", i, wc.Status, wc.Err)
		}
		if wc.WRID != uint64(i) {
			t.Fatalf("completion order: got wrid %d at position %d", wc.WRID, i)
		}
		if wc.DoneV < lastDone {
			t.Fatalf("op %d done %v before previous %v", i, wc.DoneV, lastDone)
		}
		lastDone = wc.DoneV
	}
}
