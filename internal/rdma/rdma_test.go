package rdma

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"rstore/internal/simnet"
)

// pair is a connected client/server test fixture.
type pair struct {
	net       *Network
	clientDev *Device
	serverDev *Device
	client    *QP
	server    *QP
	clientPD  *PD
	serverPD  *PD
	lis       *Listener
}

func newPair(t *testing.T) *pair {
	t.Helper()
	f := simnet.NewFabric(2, simnet.DefaultParams())
	n := NewNetwork(f)
	sd, err := n.OpenDevice(1)
	if err != nil {
		t.Fatalf("OpenDevice(server): %v", err)
	}
	lis, err := sd.Listen("svc", nil, ConnOpts{})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	cd, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice(client): %v", err)
	}
	cqp, err := cd.Dial(context.Background(), 1, "svc", nil, ConnOpts{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	sqp, err := lis.Accept(context.Background())
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	p := &pair{
		net: n, clientDev: cd, serverDev: sd,
		client: cqp, server: sqp,
		clientPD: cqp.PD(), serverPD: sqp.PD(),
		lis: lis,
	}
	t.Cleanup(func() {
		cqp.Close()
		sqp.Close()
		lis.Close()
	})
	return p
}

func (p *pair) mustRegister(t *testing.T, pd *PD, n int, access Access) *MemoryRegion {
	t.Helper()
	mr, err := pd.RegisterMemory(make([]byte, n), access)
	if err != nil {
		t.Fatalf("RegisterMemory: %v", err)
	}
	return mr
}

func pollOne(t *testing.T, cq *CQ) WC {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	wc, err := cq.Next(ctx)
	if err != nil {
		t.Fatalf("CQ.Next: %v", err)
	}
	return wc
}

func TestWriteReadRoundTrip(t *testing.T) {
	p := newPair(t)
	remote := p.mustRegister(t, p.serverPD, 4096, AccessRemoteRead|AccessRemoteWrite)
	local := p.mustRegister(t, p.clientPD, 4096, AccessLocalWrite)

	payload := []byte("the quick brown fox jumps over the lazy dog")
	copy(local.Bytes(), payload)

	if err := p.client.PostSend(SendWR{
		WRID: 1, Op: OpWrite,
		Local:     SGE{MR: local, Offset: 0, Len: len(payload)},
		RemoteKey: remote.RKey(), RemoteAddr: 128,
	}); err != nil {
		t.Fatalf("PostSend write: %v", err)
	}
	wc := pollOne(t, p.client.SendCQ())
	if wc.Status != StatusSuccess {
		t.Fatalf("write wc: %v (%v)", wc.Status, wc.Err)
	}
	if wc.WRID != 1 || wc.Op != OpWrite {
		t.Errorf("wc fields: %+v", wc)
	}
	if got := remote.Bytes()[128 : 128+len(payload)]; !bytes.Equal(got, payload) {
		t.Fatalf("remote memory = %q, want %q", got, payload)
	}

	// Read it back into a different part of the local region.
	if err := p.client.PostSend(SendWR{
		WRID: 2, Op: OpRead,
		Local:     SGE{MR: local, Offset: 1024, Len: len(payload)},
		RemoteKey: remote.RKey(), RemoteAddr: 128,
	}); err != nil {
		t.Fatalf("PostSend read: %v", err)
	}
	wc = pollOne(t, p.client.SendCQ())
	if wc.Status != StatusSuccess {
		t.Fatalf("read wc: %v (%v)", wc.Status, wc.Err)
	}
	if got := local.Bytes()[1024 : 1024+len(payload)]; !bytes.Equal(got, payload) {
		t.Fatalf("read back %q, want %q", got, payload)
	}
}

func TestOneSidedNeedsNoServerGoroutine(t *testing.T) {
	// The server never polls or posts anything; one-sided ops still work.
	p := newPair(t)
	remote := p.mustRegister(t, p.serverPD, 64, AccessRemoteRead|AccessRemoteWrite)
	copy(remote.Bytes(), []byte("server-resident data"))
	local := p.mustRegister(t, p.clientPD, 64, AccessLocalWrite)

	if err := p.client.PostSend(SendWR{
		WRID: 7, Op: OpRead,
		Local:     SGE{MR: local, Len: 20},
		RemoteKey: remote.RKey(),
	}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	wc := pollOne(t, p.client.SendCQ())
	if wc.Status != StatusSuccess {
		t.Fatalf("wc: %v (%v)", wc.Status, wc.Err)
	}
	if got := string(local.Bytes()[:20]); got != "server-resident data" {
		t.Fatalf("read %q", got)
	}
	if st := p.server.Stats(); st.SendOps != 0 {
		t.Errorf("server issued %d sends; one-sided ops must not involve it", st.SendOps)
	}
}

func TestSendRecv(t *testing.T) {
	p := newPair(t)
	sendBuf := p.mustRegister(t, p.clientPD, 128, 0)
	recvBuf := p.mustRegister(t, p.serverPD, 128, AccessLocalWrite)

	if err := p.server.PostRecv(RecvWR{WRID: 9, Local: SGE{MR: recvBuf, Len: 128}}); err != nil {
		t.Fatalf("PostRecv: %v", err)
	}
	msg := []byte("hello two-sided world")
	copy(sendBuf.Bytes(), msg)
	if err := p.client.PostSend(SendWR{
		WRID: 3, Op: OpSend,
		Local: SGE{MR: sendBuf, Len: len(msg)},
		Imm:   42, HasImm: true,
	}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}

	swc := pollOne(t, p.client.SendCQ())
	if swc.Status != StatusSuccess {
		t.Fatalf("send wc: %v (%v)", swc.Status, swc.Err)
	}
	rwc := pollOne(t, p.server.RecvCQ())
	if rwc.Status != StatusSuccess {
		t.Fatalf("recv wc: %v (%v)", rwc.Status, rwc.Err)
	}
	if rwc.WRID != 9 || rwc.ByteLen != len(msg) || !rwc.HasImm || rwc.Imm != 42 {
		t.Errorf("recv wc fields: %+v", rwc)
	}
	if got := recvBuf.Bytes()[:len(msg)]; !bytes.Equal(got, msg) {
		t.Errorf("recv buffer = %q, want %q", got, msg)
	}
}

func TestWriteWithImm(t *testing.T) {
	p := newPair(t)
	remote := p.mustRegister(t, p.serverPD, 256, AccessRemoteWrite)
	local := p.mustRegister(t, p.clientPD, 256, 0)
	copy(local.Bytes(), []byte("notify me"))

	// Zero-length receive acts as the notification doorbell.
	if err := p.server.PostRecv(RecvWR{WRID: 11}); err != nil {
		t.Fatalf("PostRecv: %v", err)
	}
	if err := p.client.PostSend(SendWR{
		WRID: 4, Op: OpWriteImm,
		Local:     SGE{MR: local, Len: 9},
		RemoteKey: remote.RKey(), RemoteAddr: 0,
		Imm: 0xdeadbeef,
	}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}

	swc := pollOne(t, p.client.SendCQ())
	if swc.Status != StatusSuccess {
		t.Fatalf("send wc: %v (%v)", swc.Status, swc.Err)
	}
	rwc := pollOne(t, p.server.RecvCQ())
	if rwc.Status != StatusSuccess || rwc.Imm != 0xdeadbeef || !rwc.HasImm {
		t.Fatalf("recv wc: %+v", rwc)
	}
	if rwc.ByteLen != 9 {
		t.Errorf("recv ByteLen = %d, want 9", rwc.ByteLen)
	}
	if got := string(remote.Bytes()[:9]); got != "notify me" {
		t.Errorf("remote = %q", got)
	}
}

func TestFetchAdd(t *testing.T) {
	p := newPair(t)
	remote := p.mustRegister(t, p.serverPD, 64, AccessRemoteAtomic)
	binary.LittleEndian.PutUint64(remote.Bytes()[8:], 100)
	local := p.mustRegister(t, p.clientPD, 8, AccessLocalWrite)

	if err := p.client.PostSend(SendWR{
		WRID: 5, Op: OpFetchAdd,
		Local:     SGE{MR: local, Len: 8},
		RemoteKey: remote.RKey(), RemoteAddr: 8,
		Add: 23,
	}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	wc := pollOne(t, p.client.SendCQ())
	if wc.Status != StatusSuccess {
		t.Fatalf("wc: %v (%v)", wc.Status, wc.Err)
	}
	if wc.Old != 100 {
		t.Errorf("Old = %d, want 100", wc.Old)
	}
	if got := binary.LittleEndian.Uint64(remote.Bytes()[8:]); got != 123 {
		t.Errorf("remote word = %d, want 123", got)
	}
}

func TestCmpSwap(t *testing.T) {
	p := newPair(t)
	remote := p.mustRegister(t, p.serverPD, 16, AccessRemoteAtomic)
	binary.LittleEndian.PutUint64(remote.Bytes(), 7)
	local := p.mustRegister(t, p.clientPD, 8, AccessLocalWrite)

	post := func(wrid, cmp, swap uint64) WC {
		t.Helper()
		if err := p.client.PostSend(SendWR{
			WRID: wrid, Op: OpCmpSwap,
			Local:     SGE{MR: local, Len: 8},
			RemoteKey: remote.RKey(), RemoteAddr: 0,
			Compare: cmp, Swap: swap,
		}); err != nil {
			t.Fatalf("PostSend: %v", err)
		}
		return pollOne(t, p.client.SendCQ())
	}

	// Successful swap.
	wc := post(1, 7, 99)
	if wc.Status != StatusSuccess || wc.Old != 7 {
		t.Fatalf("cas1: %+v", wc)
	}
	if got := binary.LittleEndian.Uint64(remote.Bytes()); got != 99 {
		t.Fatalf("word = %d, want 99", got)
	}
	// Failed compare leaves the word alone but reports the old value.
	wc = post(2, 7, 1)
	if wc.Status != StatusSuccess || wc.Old != 99 {
		t.Fatalf("cas2: %+v", wc)
	}
	if got := binary.LittleEndian.Uint64(remote.Bytes()); got != 99 {
		t.Fatalf("word = %d, want still 99", got)
	}
}

func TestConcurrentFetchAddIsAtomic(t *testing.T) {
	// Many clients hammer one counter; the sum must be exact and the set of
	// returned Old values must be unique (each increment observed a
	// distinct prior value).
	f := simnet.NewFabric(5, simnet.DefaultParams())
	n := NewNetwork(f)
	sd, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	lis, err := sd.Listen("ctr", nil, ConnOpts{})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	counter, err := lis.PD().RegisterMemory(make([]byte, 8), AccessRemoteAtomic)
	if err != nil {
		t.Fatalf("RegisterMemory: %v", err)
	}
	go func() {
		for {
			if _, err := lis.Accept(context.Background()); err != nil {
				return
			}
		}
	}()

	const (
		clients = 4
		perC    = 50
	)
	olds := make(chan uint64, clients*perC)
	var wg sync.WaitGroup
	for c := 1; c <= clients; c++ {
		wg.Add(1)
		go func(node simnet.NodeID) {
			defer wg.Done()
			dev, err := n.OpenDevice(node)
			if err != nil {
				t.Errorf("OpenDevice: %v", err)
				return
			}
			qp, err := dev.Dial(context.Background(), 0, "ctr", nil, ConnOpts{})
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer qp.Close()
			res, err := qp.PD().RegisterMemory(make([]byte, 8), AccessLocalWrite)
			if err != nil {
				t.Errorf("RegisterMemory: %v", err)
				return
			}
			for i := 0; i < perC; i++ {
				if err := qp.PostSend(SendWR{
					WRID: uint64(i), Op: OpFetchAdd,
					Local:     SGE{MR: res, Len: 8},
					RemoteKey: counter.RKey(), Add: 1,
				}); err != nil {
					t.Errorf("PostSend: %v", err)
					return
				}
				wc, err := qp.SendCQ().Next(context.Background())
				if err != nil || wc.Status != StatusSuccess {
					t.Errorf("fetch-add wc: %v %v", wc.Status, err)
					return
				}
				olds <- wc.Old
			}
		}(simnet.NodeID(c))
	}
	wg.Wait()
	close(olds)

	seen := make(map[uint64]bool)
	for v := range olds {
		if seen[v] {
			t.Fatalf("duplicate old value %d: atomicity violated", v)
		}
		seen[v] = true
	}
	if got := binary.LittleEndian.Uint64(counter.Bytes()); got != clients*perC {
		t.Fatalf("counter = %d, want %d", got, clients*perC)
	}
}

func TestRemoteAccessViolations(t *testing.T) {
	tests := []struct {
		name string
		wr   func(p *pair, remote *MemoryRegion, local *MemoryRegion) SendWR
	}{
		{
			name: "write to read-only region",
			wr: func(p *pair, remote, local *MemoryRegion) SendWR {
				return SendWR{Op: OpWrite, Local: SGE{MR: local, Len: 8}, RemoteKey: remote.RKey()}
			},
		},
		{
			name: "read past end",
			wr: func(p *pair, remote, local *MemoryRegion) SendWR {
				return SendWR{Op: OpRead, Local: SGE{MR: local, Len: 32}, RemoteKey: remote.RKey(), RemoteAddr: 48}
			},
		},
		{
			name: "bogus rkey",
			wr: func(p *pair, remote, local *MemoryRegion) SendWR {
				return SendWR{Op: OpRead, Local: SGE{MR: local, Len: 8}, RemoteKey: 0xffff}
			},
		},
		{
			name: "atomic without remote-atomic grant",
			wr: func(p *pair, remote, local *MemoryRegion) SendWR {
				return SendWR{Op: OpFetchAdd, Local: SGE{MR: local, Len: 8}, RemoteKey: remote.RKey(), Add: 1}
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := newPair(t)
			remote := p.mustRegister(t, p.serverPD, 64, AccessRemoteRead)
			local := p.mustRegister(t, p.clientPD, 64, AccessLocalWrite)
			wr := tt.wr(p, remote, local)
			wr.WRID = 77
			if err := p.client.PostSend(wr); err != nil {
				t.Fatalf("PostSend: %v", err)
			}
			wc := pollOne(t, p.client.SendCQ())
			if wc.Status != StatusRemoteAccessError {
				t.Fatalf("status = %v (%v), want remote-access-error", wc.Status, wc.Err)
			}
			// A remote access error moves the QP to the error state.
			if st := p.client.State(); st != QPError {
				t.Errorf("QP state = %v, want error", st)
			}
			if err := p.client.PostSend(SendWR{Op: OpRead, Local: SGE{MR: local, Len: 8}, RemoteKey: remote.RKey()}); !errors.Is(err, ErrQPState) {
				t.Errorf("post after error = %v, want ErrQPState", err)
			}
		})
	}
}

func TestLocalValidationErrors(t *testing.T) {
	p := newPair(t)
	local := p.mustRegister(t, p.clientPD, 16, AccessLocalWrite)
	foreignPD := p.clientDev.AllocPD()
	foreign, err := foreignPD.RegisterMemory(make([]byte, 16), AccessLocalWrite)
	if err != nil {
		t.Fatalf("RegisterMemory: %v", err)
	}

	tests := []struct {
		name string
		wr   SendWR
		want error
	}{
		{"sge beyond region", SendWR{Op: OpWrite, Local: SGE{MR: local, Offset: 8, Len: 16}}, ErrBounds},
		{"foreign pd sge", SendWR{Op: OpWrite, Local: SGE{MR: foreign, Len: 8}}, ErrPDMismatch},
		{"nil mr", SendWR{Op: OpWrite, Local: SGE{Len: 8}}, ErrBadAccess},
		{"unaligned atomic", SendWR{Op: OpFetchAdd, Local: SGE{MR: local, Len: 8}, RemoteAddr: 4}, ErrUnaligned},
		{"atomic result not 8B", SendWR{Op: OpCmpSwap, Local: SGE{MR: local, Len: 4}}, ErrBounds},
		{"bad opcode", SendWR{Op: OpCode(200), Local: SGE{MR: local, Len: 8}}, ErrBadAccess},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := p.client.PostSend(tt.wr); !errors.Is(err, tt.want) {
				t.Errorf("PostSend = %v, want %v", err, tt.want)
			}
		})
	}
	// Local validation failures do not kill the QP.
	if st := p.client.State(); st != QPReady {
		t.Errorf("QP state = %v, want ready", st)
	}
}

func TestRecvTooSmall(t *testing.T) {
	p := newPair(t)
	sendBuf := p.mustRegister(t, p.clientPD, 64, 0)
	recvBuf := p.mustRegister(t, p.serverPD, 8, AccessLocalWrite)
	if err := p.server.PostRecv(RecvWR{WRID: 1, Local: SGE{MR: recvBuf, Len: 8}}); err != nil {
		t.Fatalf("PostRecv: %v", err)
	}
	if err := p.client.PostSend(SendWR{WRID: 2, Op: OpSend, Local: SGE{MR: sendBuf, Len: 64}}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	swc := pollOne(t, p.client.SendCQ())
	if swc.Status != StatusRemoteAccessError {
		t.Errorf("send status = %v, want remote-access-error", swc.Status)
	}
	rwc := pollOne(t, p.server.RecvCQ())
	if rwc.Status != StatusRemoteAccessError {
		t.Errorf("recv status = %v, want remote-access-error", rwc.Status)
	}
}

func TestNodeDownFailsOps(t *testing.T) {
	p := newPair(t)
	remote := p.mustRegister(t, p.serverPD, 64, AccessRemoteRead)
	local := p.mustRegister(t, p.clientPD, 64, AccessLocalWrite)

	if err := p.net.Fabric().SetNodeUp(1, false); err != nil {
		t.Fatalf("SetNodeUp: %v", err)
	}
	if err := p.client.PostSend(SendWR{WRID: 1, Op: OpRead, Local: SGE{MR: local, Len: 8}, RemoteKey: remote.RKey()}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	wc := pollOne(t, p.client.SendCQ())
	if wc.Status != StatusRetryExceeded {
		t.Fatalf("status = %v (%v), want retry-exceeded", wc.Status, wc.Err)
	}
	if st := p.client.State(); st != QPError {
		t.Errorf("QP state = %v, want error", st)
	}
}

func TestCloseFlushesPending(t *testing.T) {
	p := newPair(t)
	recvBuf := p.mustRegister(t, p.serverPD, 16, AccessLocalWrite)
	if err := p.server.PostRecv(RecvWR{WRID: 21, Local: SGE{MR: recvBuf, Len: 16}}); err != nil {
		t.Fatalf("PostRecv: %v", err)
	}
	p.server.Close()
	wc := pollOne(t, p.server.RecvCQ())
	if wc.Status != StatusFlushed || wc.WRID != 21 {
		t.Errorf("flushed recv wc: %+v", wc)
	}
	// Posting to a closed QP fails fast.
	if err := p.server.PostRecv(RecvWR{WRID: 22, Local: SGE{MR: recvBuf, Len: 16}}); !errors.Is(err, ErrQPState) {
		t.Errorf("post recv after close = %v", err)
	}
}

func TestSendToClosedPeer(t *testing.T) {
	p := newPair(t)
	local := p.mustRegister(t, p.clientPD, 16, AccessLocalWrite)
	p.server.Close()
	if err := p.client.PostSend(SendWR{WRID: 1, Op: OpWrite, Local: SGE{MR: local, Len: 8}, RemoteKey: 1}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	wc := pollOne(t, p.client.SendCQ())
	if wc.Status != StatusRetryExceeded {
		t.Errorf("status = %v, want retry-exceeded", wc.Status)
	}
}

func TestDeregisteredRKeyRejected(t *testing.T) {
	p := newPair(t)
	remote := p.mustRegister(t, p.serverPD, 64, AccessRemoteRead)
	local := p.mustRegister(t, p.clientPD, 64, AccessLocalWrite)
	remote.Deregister()
	if err := p.client.PostSend(SendWR{WRID: 1, Op: OpRead, Local: SGE{MR: local, Len: 8}, RemoteKey: remote.RKey()}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	wc := pollOne(t, p.client.SendCQ())
	if wc.Status != StatusRemoteAccessError || !errors.Is(wc.Err, ErrBadRKey) {
		t.Errorf("wc = %+v", wc)
	}
}

func TestDialErrors(t *testing.T) {
	f := simnet.NewFabric(2, simnet.DefaultParams())
	n := NewNetwork(f)
	d, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	if _, err := d.Dial(context.Background(), 1, "nope", nil, ConnOpts{}); !errors.Is(err, ErrServiceNotFound) {
		t.Errorf("dial unknown service = %v", err)
	}
	if err := f.SetNodeUp(1, false); err != nil {
		t.Fatalf("SetNodeUp: %v", err)
	}
	if _, err := d.Dial(context.Background(), 1, "nope", nil, ConnOpts{}); !errors.Is(err, simnet.ErrNodeDown) {
		t.Errorf("dial down node = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Dial(ctx, 1, "nope", nil, ConnOpts{}); !errors.Is(err, context.Canceled) {
		t.Errorf("dial canceled ctx = %v", err)
	}
}

func TestListenerLifecycle(t *testing.T) {
	f := simnet.NewFabric(2, simnet.DefaultParams())
	n := NewNetwork(f)
	d, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	lis, err := d.Listen("svc", nil, ConnOpts{})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := d.Listen("svc", nil, ConnOpts{}); err == nil {
		t.Error("duplicate Listen should fail")
	}
	lis.Close()
	lis.Close() // idempotent
	if _, err := lis.Accept(context.Background()); !errors.Is(err, ErrListenerClosed) {
		t.Errorf("accept after close = %v", err)
	}
	// Service name is free again.
	lis2, err := d.Listen("svc", nil, ConnOpts{})
	if err != nil {
		t.Fatalf("re-Listen: %v", err)
	}
	lis2.Close()
}

func TestModeledLatencyOrdering(t *testing.T) {
	// An 8-byte READ must be much faster than a 1 MiB READ, and the 1 MiB
	// latency must be dominated by serialization time.
	p := newPair(t)
	remote := p.mustRegister(t, p.serverPD, 1<<20, AccessRemoteRead)
	local := p.mustRegister(t, p.clientPD, 1<<20, AccessLocalWrite)

	read := func(n int) simnet.VTime {
		t.Helper()
		if err := p.client.PostSend(SendWR{Op: OpRead, Local: SGE{MR: local, Len: n}, RemoteKey: remote.RKey()}); err != nil {
			t.Fatalf("PostSend: %v", err)
		}
		wc := pollOne(t, p.client.SendCQ())
		if wc.Status != StatusSuccess {
			t.Fatalf("wc: %v (%v)", wc.Status, wc.Err)
		}
		return wc.Latency()
	}
	small := read(8)
	big := read(1 << 20)
	if small >= big {
		t.Errorf("8B latency %v >= 1MiB latency %v", small, big)
	}
	params := simnet.DefaultParams()
	serBig := simnet.VTime(params.SerializationTime(1 << 20))
	if big < serBig {
		t.Errorf("1MiB latency %v below pure serialization %v", big, serBig)
	}
	// Close-to-hardware small-op latency: ~2 props + overhead, well under 10us.
	if small.Duration() > 10*time.Microsecond {
		t.Errorf("8B read latency %v, want close-to-hardware (<10us)", small.Duration())
	}
}

func TestQPStats(t *testing.T) {
	p := newPair(t)
	remote := p.mustRegister(t, p.serverPD, 64, AccessRemoteWrite)
	local := p.mustRegister(t, p.clientPD, 64, 0)
	for i := 0; i < 3; i++ {
		if err := p.client.PostSend(SendWR{Op: OpWrite, Local: SGE{MR: local, Len: 16}, RemoteKey: remote.RKey()}); err != nil {
			t.Fatalf("PostSend: %v", err)
		}
		pollOne(t, p.client.SendCQ())
	}
	st := p.client.Stats()
	if st.SendOps != 3 || st.OneSided != 3 || st.SendBytes != 48 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRegisterTimeModel(t *testing.T) {
	c := DefaultCosts()
	small := c.RegisterTime(100)
	big := c.RegisterTime(1 << 20)
	if small >= big {
		t.Errorf("register time not monotonic: %v >= %v", small, big)
	}
	wantPages := (1<<20 + c.PageSize - 1) / c.PageSize
	want := c.RegisterBase + time.Duration(wantPages)*c.PinPerPage
	if big != want {
		t.Errorf("RegisterTime(1MiB) = %v, want %v", big, want)
	}
	if c.RegisterTime(-1) != c.RegisterBase {
		t.Errorf("negative size should cost base only")
	}
}

func TestAccessString(t *testing.T) {
	tests := []struct {
		a    Access
		want string
	}{
		{0, "none"},
		{AccessLocalWrite, "lw"},
		{AccessRemoteRead | AccessRemoteWrite, "rr|rw"},
		{AccessLocalWrite | AccessRemoteRead | AccessRemoteWrite | AccessRemoteAtomic, "lw|rr|rw|ra"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("Access(%d).String() = %q, want %q", tt.a, got, tt.want)
		}
	}
}

func TestOpCodeAndStatusStrings(t *testing.T) {
	if OpRead.String() != "READ" || OpWriteImm.String() != "WRITE_IMM" {
		t.Error("opcode strings wrong")
	}
	if StatusSuccess.String() != "success" || StatusRNRTimeout.String() != "rnr-timeout" {
		t.Error("status strings wrong")
	}
	if OpCode(99).String() == "" || Status(99).String() == "" {
		t.Error("unknown enums must still render")
	}
}

func TestCQPoll(t *testing.T) {
	cq := NewCQ(8)
	for i := 0; i < 5; i++ {
		cq.push(WC{WRID: uint64(i)})
	}
	if got := cq.Len(); got != 5 {
		t.Errorf("Len = %d", got)
	}
	got := cq.Poll(3)
	if len(got) != 3 || got[0].WRID != 0 || got[2].WRID != 2 {
		t.Errorf("Poll(3) = %+v", got)
	}
	got = cq.Poll(10)
	if len(got) != 2 {
		t.Errorf("Poll(10) = %d entries, want 2", len(got))
	}
	if got := cq.Poll(1); got != nil {
		t.Errorf("empty Poll = %+v", got)
	}
}

// Property: WRITE then READ of random windows round-trips arbitrary data.
func TestWriteReadProperty(t *testing.T) {
	p := newPair(t)
	const regionSize = 1 << 14
	remote := p.mustRegister(t, p.serverPD, regionSize, AccessRemoteRead|AccessRemoteWrite)
	local := p.mustRegister(t, p.clientPD, regionSize, AccessLocalWrite)

	fn := func(data []byte, offRaw uint16) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > regionSize/2 {
			data = data[:regionSize/2]
		}
		off := uint64(offRaw) % uint64(regionSize-len(data))
		copy(local.Bytes()[:len(data)], data)
		if err := p.client.PostSend(SendWR{Op: OpWrite, Local: SGE{MR: local, Len: len(data)}, RemoteKey: remote.RKey(), RemoteAddr: off}); err != nil {
			return false
		}
		if wc := pollOne(t, p.client.SendCQ()); wc.Status != StatusSuccess {
			return false
		}
		dstOff := uint64(regionSize / 2)
		if err := p.client.PostSend(SendWR{Op: OpRead, Local: SGE{MR: local, Offset: dstOff, Len: len(data)}, RemoteKey: remote.RKey(), RemoteAddr: off}); err != nil {
			return false
		}
		if wc := pollOne(t, p.client.SendCQ()); wc.Status != StatusSuccess {
			return false
		}
		return bytes.Equal(local.Bytes()[dstOff:dstOff+uint64(len(data))], data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConnectTimeModel(t *testing.T) {
	c := DefaultCosts()
	p := simnet.DefaultParams()
	got := c.ConnectTime(p)
	want := time.Duration(c.ConnectRTTs)*2*p.PropDelay + 2*c.ConnectCPU
	if got != want {
		t.Errorf("ConnectTime = %v, want %v", got, want)
	}
}

func TestDeviceCloseRejectsNewWork(t *testing.T) {
	f := simnet.NewFabric(1, simnet.DefaultParams())
	n := NewNetwork(f)
	d, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	pd := d.AllocPD()
	d.Close()
	if _, err := pd.RegisterMemory(make([]byte, 8), 0); !errors.Is(err, ErrDeviceClosed) {
		t.Errorf("register after close = %v", err)
	}
	if _, err := d.Listen("x", nil, ConnOpts{}); !errors.Is(err, ErrDeviceClosed) {
		t.Errorf("listen after close = %v", err)
	}
	if _, err := d.Dial(context.Background(), 0, "x", nil, ConnOpts{}); !errors.Is(err, ErrDeviceClosed) {
		t.Errorf("dial after close = %v", err)
	}
}
