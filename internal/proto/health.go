package proto

import (
	"rstore/internal/health"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// HealthReport is the MtHealth response: the primary master's current
// alert table, its bounded health-event ring, and the cluster-merged
// windowed telemetry backing the verdicts (so the CLI can print per-window
// rates from the same data the rules judged).
type HealthReport struct {
	Alerts []health.Alert
	Events []health.Event
	// Windows is the merged windowed telemetry from the last evaluation.
	Windows telemetry.WindowSnapshot
}

// Encode marshals the report. The window snapshot travels in its own
// binary format nested as a byte field, like telemetry snapshots do.
func (r *HealthReport) Encode(e *rpc.Encoder) error {
	e.U32(uint32(len(r.Alerts)))
	for _, a := range r.Alerts {
		e.String(a.Rule)
		e.String(a.Target)
		e.String(a.Kind)
		e.U8(uint8(a.Severity))
		e.U8(uint8(a.State))
		e.String(a.Msg)
		e.U64(uint64(a.FiredV))
		e.U64(uint64(a.ResolvedV))
	}
	e.U32(uint32(len(r.Events)))
	for _, ev := range r.Events {
		e.U64(uint64(ev.V))
		e.String(ev.Rule)
		e.String(ev.Target)
		e.U8(uint8(ev.Severity))
		e.Bool(ev.Firing)
		e.String(ev.Msg)
	}
	blob, err := r.Windows.MarshalBinary()
	if err != nil {
		return err
	}
	e.Bytes32(blob)
	return nil
}

// DecodeHealthReport unmarshals a HealthReport.
func DecodeHealthReport(d *rpc.Decoder) (HealthReport, error) {
	var r HealthReport
	na := d.U32()
	for i := uint32(0); i < na && d.Err() == nil; i++ {
		r.Alerts = append(r.Alerts, health.Alert{
			Rule:      d.String(),
			Target:    d.String(),
			Kind:      d.String(),
			Severity:  health.Severity(d.U8()),
			State:     health.AlertState(d.U8()),
			Msg:       d.String(),
			FiredV:    simnet.VTime(d.U64()),
			ResolvedV: simnet.VTime(d.U64()),
		})
	}
	ne := d.U32()
	for i := uint32(0); i < ne && d.Err() == nil; i++ {
		r.Events = append(r.Events, health.Event{
			V:        simnet.VTime(d.U64()),
			Rule:     d.String(),
			Target:   d.String(),
			Severity: health.Severity(d.U8()),
			Firing:   d.Bool(),
			Msg:      d.String(),
		})
	}
	blob := d.Bytes32()
	if err := d.Err(); err != nil {
		return HealthReport{}, err
	}
	if err := r.Windows.UnmarshalBinary(blob); err != nil {
		return HealthReport{}, err
	}
	return r, nil
}
