// Package proto defines the control-plane protocol shared by RStore's
// master, memory servers, and clients: region metadata, the striped extent
// layout of the global address space, offset-to-fragment translation, and
// the binary wire encoding of every control message.
package proto

import (
	"errors"
	"fmt"

	"rstore/internal/rpc"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Control message types served by the master.
const (
	MtRegisterServer uint16 = iota + 1
	MtHeartbeat
	MtAlloc
	MtMap
	MtUnmap
	MtFree
	MtClusterInfo
	MtListRegions
	// MtRemap refetches a region's metadata without changing its map count.
	// Unlike MtMap it is idempotent, so clients retry it freely while
	// recovering from a memory-server bounce.
	MtRemap
	// MtStats returns the master's aggregated telemetry: its own snapshot
	// plus the latest snapshot each memory server piggybacked on its
	// heartbeat.
	MtStats
	// MtRegionStatus returns every region's repair-plane view: full
	// metadata plus per-copy health/dirty/under-repair flags.
	MtRegionStatus
	// MtReportDegraded is a client telling the master a write could not
	// reach one copy of a region; the master marks the copy dirty and
	// schedules repair. The response carries the region's current
	// generation so the reporter can detect a stale layout.
	MtReportDegraded
	// MtTraceFetch asks the master to pull every buffered span for one
	// TraceID from its own ring and every alive memory server's (via
	// MtTracePull), merged into one response the caller assembles into a
	// causal tree.
	MtTraceFetch
	// MtMasterStatus returns a master replica's view of the replication
	// group: its role (primary/standby), the master epoch, and who it
	// believes the primary is. It is the only master RPC a standby answers,
	// so clients and probes can use it to locate the primary.
	MtMasterStatus
	// MtReplHello is the primary's stream-open message to a standby: it
	// carries the primary's epoch and a full metadata snapshot, resetting
	// the standby's state to the primary's log position.
	MtReplHello
	// MtReplAppend streams ordered metadata log records from the primary to
	// a standby. An empty append doubles as the primary's lease renewal
	// beat; a standby that misses them long enough starts an election.
	MtReplAppend
	// MtHealth returns the primary's health-engine state: the alert table,
	// the health-event ring, and the cluster-merged windowed telemetry the
	// last evaluation saw.
	MtHealth
)

// Control message types served by the memory servers' control endpoint.
const (
	// MtRepairPull asks a memory server to pull a byte range from a peer's
	// arena into its own via chunked one-sided reads (the repair plane's
	// server-to-server transfer).
	MtRepairPull uint16 = iota + 64
	// MtTracePull asks a memory server for every span of one TraceID in
	// its telemetry ring and flight recorder (the master's fan-out leg of
	// MtTraceFetch).
	MtTracePull
	// MtPing is a no-op round trip on the control endpoint. A master
	// candidate uses it during an election to confirm it can still reach
	// the cluster's memory servers before assuming the primaryship (each
	// successful round trip also advances the fabric's virtual clock, which
	// is what lets the candidate wait out the old primary's lease on
	// virtual time).
	MtPing
)

// Service names on the fabric.
const (
	// MasterService is the master's control RPC endpoint.
	MasterService = "rstore-master"
	// MemDataService is the memory servers' one-sided data endpoint;
	// clients connect QPs here and then never involve the server CPU.
	MemDataService = "rstore-mem"
	// MemNotifyService is the memory servers' notification endpoint.
	MemNotifyService = "rstore-notify"
	// MemCtrlService is the memory servers' control endpoint, used by the
	// master's repair plane (never by clients).
	MemCtrlService = "rstore-memctl"
)

// Protocol errors surfaced to API users.
var (
	ErrBadStripe = errors.New("proto: invalid stripe unit")
	ErrBadRange  = errors.New("proto: range outside region")
)

// RegionID names an allocated region cluster-wide.
type RegionID uint64

// Extent is one server-resident piece of a region: a window of the
// server's donated arena, addressable remotely through the arena's rkey.
type Extent struct {
	Server simnet.NodeID
	RKey   uint32
	// Addr is the byte offset of the extent within the server's arena
	// memory region.
	Addr uint64
	// Len is the extent length in bytes.
	Len uint64
}

// RegionInfo is the complete metadata a client needs to access a region.
// After Rmap delivers it, the data path never consults the master again —
// the paper's separation philosophy.
type RegionInfo struct {
	ID         RegionID
	Name       string
	Size       uint64
	StripeUnit uint64
	// Extents holds the primary copy, one extent per participating server,
	// in stripe order: global stripe unit u lives in Extents[u % len] at
	// unit index u / len.
	Extents []Extent
	// Replicas holds optional additional copies with identical geometry.
	Replicas [][]Extent
	// Generation counts layout changes: the master bumps it whenever the
	// repair plane swaps extents, so clients can tell a stale snapshot
	// (and its now-dangling remote addresses) from the current one.
	Generation uint64
}

// Copies returns every copy's extent slice: the primary at index 0, then
// the replicas. The slices alias the RegionInfo.
func (r *RegionInfo) Copies() [][]Extent {
	out := make([][]Extent, 0, 1+len(r.Replicas))
	out = append(out, r.Extents)
	out = append(out, r.Replicas...)
	return out
}

// HomeServer returns the node responsible for region-scoped coordination
// (notifications): the owner of the first extent.
func (r *RegionInfo) HomeServer() simnet.NodeID {
	if len(r.Extents) == 0 {
		return -1
	}
	return r.Extents[0].Server
}

// Servers returns the distinct primary servers in stripe order.
func (r *RegionInfo) Servers() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(r.Extents))
	seen := make(map[simnet.NodeID]bool, len(r.Extents))
	for _, e := range r.Extents {
		if !seen[e.Server] {
			seen[e.Server] = true
			out = append(out, e.Server)
		}
	}
	return out
}

// Fragment is the result of address translation: one contiguous remote
// window plus the offset of its bytes within the caller's buffer.
type Fragment struct {
	Server simnet.NodeID
	RKey   uint32
	// Addr is the remote offset within the server's arena region.
	Addr uint64
	// Len is the fragment length in bytes.
	Len int
	// BufOff is where the fragment's bytes sit in the caller's buffer.
	BufOff int
}

// ExtentSizes returns the per-extent lengths for a region of size bytes
// striped in units of stripe across width servers. Extent k holds global
// units k, k+width, k+2*width, ...; the final unit may be partial.
func ExtentSizes(size, stripe uint64, width int) ([]uint64, error) {
	if stripe == 0 {
		return nil, ErrBadStripe
	}
	if width <= 0 {
		return nil, fmt.Errorf("%w: width %d", ErrBadStripe, width)
	}
	sizes := make([]uint64, width)
	units := size / stripe
	rem := size % stripe
	for k := 0; k < width; k++ {
		full := units / uint64(width)
		if uint64(k) < units%uint64(width) {
			full++
		}
		sizes[k] = full * stripe
	}
	if rem > 0 {
		k := units % uint64(width)
		sizes[k] += rem
	}
	return sizes, nil
}

// translate maps [off, off+n) of the region onto the given extent set.
func translate(info *RegionInfo, extents []Extent, off uint64, n int) ([]Fragment, error) {
	if n < 0 || off > info.Size || uint64(n) > info.Size-off {
		return nil, fmt.Errorf("%w: off=%d len=%d size=%d", ErrBadRange, off, n, info.Size)
	}
	if n == 0 {
		return nil, nil
	}
	su := info.StripeUnit
	width := uint64(len(extents))
	if su == 0 || width == 0 {
		return nil, ErrBadStripe
	}
	var frags []Fragment
	bufOff := 0
	remaining := uint64(n)
	for remaining > 0 {
		unit := off / su
		within := off % su
		chunk := su - within
		if chunk > remaining {
			chunk = remaining
		}
		ext := &extents[unit%width]
		addr := ext.Addr + (unit/width)*su + within
		// Coalesce with the previous fragment when contiguous on the same
		// server (happens when width == 1).
		if len(frags) > 0 {
			last := &frags[len(frags)-1]
			if last.Server == ext.Server && last.RKey == ext.RKey && last.Addr+uint64(last.Len) == addr {
				last.Len += int(chunk)
				off += chunk
				bufOff += int(chunk)
				remaining -= chunk
				continue
			}
		}
		frags = append(frags, Fragment{
			Server: ext.Server,
			RKey:   ext.RKey,
			Addr:   addr,
			Len:    int(chunk),
			BufOff: bufOff,
		})
		off += chunk
		bufOff += int(chunk)
		remaining -= chunk
	}
	return frags, nil
}

// Fragments maps [off, off+n) of the region's primary copy to remote
// windows.
func (r *RegionInfo) Fragments(off uint64, n int) ([]Fragment, error) {
	return translate(r, r.Extents, off, n)
}

// ReplicaFragments maps [off, off+n) onto replica copy i.
func (r *RegionInfo) ReplicaFragments(i int, off uint64, n int) ([]Fragment, error) {
	if i < 0 || i >= len(r.Replicas) {
		return nil, fmt.Errorf("%w: replica %d of %d", ErrBadRange, i, len(r.Replicas))
	}
	return translate(r, r.Replicas[i], off, n)
}

// EncodeExtent appends the extent to the encoder.
func EncodeExtent(e *rpc.Encoder, x Extent) {
	e.I64(int64(x.Server))
	e.U32(x.RKey)
	e.U64(x.Addr)
	e.U64(x.Len)
}

// DecodeExtent reads an extent.
func DecodeExtent(d *rpc.Decoder) Extent {
	return Extent{
		Server: simnet.NodeID(d.I64()),
		RKey:   d.U32(),
		Addr:   d.U64(),
		Len:    d.U64(),
	}
}

func encodeExtents(e *rpc.Encoder, xs []Extent) {
	e.U32(uint32(len(xs)))
	for _, x := range xs {
		EncodeExtent(e, x)
	}
}

func decodeExtents(d *rpc.Decoder) []Extent {
	n := d.U32()
	if d.Err() != nil || n == 0 {
		return nil
	}
	xs := make([]Extent, 0, n)
	for i := uint32(0); i < n; i++ {
		xs = append(xs, DecodeExtent(d))
	}
	return xs
}

// Clone returns a deep copy of the region metadata. The master replication
// plane uses it so snapshots and log records never alias live state.
func (r *RegionInfo) Clone() *RegionInfo {
	c := *r
	c.Extents = append([]Extent(nil), r.Extents...)
	c.Replicas = make([][]Extent, len(r.Replicas))
	for i, rep := range r.Replicas {
		c.Replicas[i] = append([]Extent(nil), rep...)
	}
	return &c
}

// EncodeRegionInfo appends the full region metadata.
func EncodeRegionInfo(e *rpc.Encoder, r *RegionInfo) {
	e.U64(uint64(r.ID))
	e.String(r.Name)
	e.U64(r.Size)
	e.U64(r.StripeUnit)
	e.U64(r.Generation)
	encodeExtents(e, r.Extents)
	e.U32(uint32(len(r.Replicas)))
	for _, rep := range r.Replicas {
		encodeExtents(e, rep)
	}
}

// DecodeRegionInfo reads region metadata.
func DecodeRegionInfo(d *rpc.Decoder) *RegionInfo {
	r := &RegionInfo{
		ID:         RegionID(d.U64()),
		Name:       d.String(),
		Size:       d.U64(),
		StripeUnit: d.U64(),
		Generation: d.U64(),
	}
	r.Extents = decodeExtents(d)
	nrep := d.U32()
	for i := uint32(0); i < nrep && d.Err() == nil; i++ {
		r.Replicas = append(r.Replicas, decodeExtents(d))
	}
	return r
}

// AllocRequest is the client's Ralloc message.
type AllocRequest struct {
	Name       string
	Size       uint64
	StripeUnit uint64
	// StripeWidth caps how many servers the region spreads over; zero
	// means all alive servers.
	StripeWidth int
	// Replicas is the number of additional copies (zero for none).
	Replicas int
	// Token makes the request idempotent across a master failover: the
	// client stamps each allocation with a unique token, the master records
	// it with the region, and a retried Alloc whose token matches the
	// existing region returns that region's metadata instead of
	// ErrRegionExists. Zero means no token (legacy callers).
	Token uint64
}

// Encode marshals the request.
func (a *AllocRequest) Encode(e *rpc.Encoder) {
	e.String(a.Name)
	e.U64(a.Size)
	e.U64(a.StripeUnit)
	e.U32(uint32(a.StripeWidth))
	e.U32(uint32(a.Replicas))
	e.U64(a.Token)
}

// DecodeAllocRequest unmarshals an AllocRequest.
func DecodeAllocRequest(d *rpc.Decoder) AllocRequest {
	a := AllocRequest{
		Name:        d.String(),
		Size:        d.U64(),
		StripeUnit:  d.U64(),
		StripeWidth: int(d.U32()),
		Replicas:    int(d.U32()),
	}
	// The token rides at the end so requests from older encoders still
	// decode (as token zero).
	if d.Err() == nil && d.Remaining() > 0 {
		a.Token = d.U64()
	}
	return a
}

// ServerInfo describes one memory server in cluster status responses.
type ServerInfo struct {
	Node     simnet.NodeID
	Capacity uint64
	Used     uint64
	Alive    bool
	// Epoch counts the server's incarnations: it starts at zero and is
	// bumped by the master each time a server re-registers after having
	// been marked dead. Clients compare epochs to tell a seamless
	// reconnect from a restart that lost the arena contents.
	Epoch uint64
}

// Encode marshals the server info.
func (s *ServerInfo) Encode(e *rpc.Encoder) {
	e.I64(int64(s.Node))
	e.U64(s.Capacity)
	e.U64(s.Used)
	e.Bool(s.Alive)
	e.U64(s.Epoch)
}

// DecodeServerInfo unmarshals a ServerInfo.
func DecodeServerInfo(d *rpc.Decoder) ServerInfo {
	return ServerInfo{
		Node:     simnet.NodeID(d.I64()),
		Capacity: d.U64(),
		Used:     d.U64(),
		Alive:    d.Bool(),
		Epoch:    d.U64(),
	}
}

// NodeStats is one node's telemetry snapshot in an MtStats response.
type NodeStats struct {
	Node  simnet.NodeID
	Role  string // "master", "memserver", ...
	Stats telemetry.Snapshot
}

// Encode marshals the node stats. The snapshot travels in its own binary
// format (see telemetry.Snapshot.MarshalBinary) nested as a byte field.
func (n *NodeStats) Encode(e *rpc.Encoder) error {
	blob, err := n.Stats.MarshalBinary()
	if err != nil {
		return err
	}
	e.I64(int64(n.Node))
	e.String(n.Role)
	e.Bytes32(blob)
	return nil
}

// DecodeNodeStats unmarshals a NodeStats.
func DecodeNodeStats(d *rpc.Decoder) (NodeStats, error) {
	n := NodeStats{
		Node: simnet.NodeID(d.I64()),
		Role: d.String(),
	}
	blob := d.Bytes32()
	if err := d.Err(); err != nil {
		return n, err
	}
	if err := n.Stats.UnmarshalBinary(blob); err != nil {
		return n, err
	}
	return n, nil
}

// RepairPullRequest asks a memory server to pull [StartOff, Len) of one
// extent from a surviving peer into its own arena at DestAddr. Resumable:
// a partial response reports how far it got, and the master retries with
// StartOff advanced (possibly against a different source).
type RepairPullRequest struct {
	// Source is the extent to read from (on a surviving peer).
	Source Extent
	// DestAddr is the byte offset in the local arena to copy into.
	DestAddr uint64
	// Len is the total extent length in bytes.
	Len uint64
	// StartOff is where to resume within the extent (0 for a fresh pull).
	StartOff uint64
	// ChunkSize bounds each one-sided read (0 = server default).
	ChunkSize uint32
	// RateBytesPerSec throttles the transfer on virtual time (0 = none).
	RateBytesPerSec uint64
}

// Encode marshals the request.
func (r *RepairPullRequest) Encode(e *rpc.Encoder) {
	EncodeExtent(e, r.Source)
	e.U64(r.DestAddr)
	e.U64(r.Len)
	e.U64(r.StartOff)
	e.U32(r.ChunkSize)
	e.U64(r.RateBytesPerSec)
}

// DecodeRepairPullRequest unmarshals a RepairPullRequest.
func DecodeRepairPullRequest(d *rpc.Decoder) RepairPullRequest {
	return RepairPullRequest{
		Source:          DecodeExtent(d),
		DestAddr:        d.U64(),
		Len:             d.U64(),
		StartOff:        d.U64(),
		ChunkSize:       d.U32(),
		RateBytesPerSec: d.U64(),
	}
}

// RepairPullResponse reports a pull's progress. A failed pull still
// returns the bytes copied so far (as a payload, not an RPC error) so the
// master can resume from Copied instead of restarting the extent.
type RepairPullResponse struct {
	// Copied is the prefix [0, Copied) of the extent now in place locally.
	Copied uint64
	// OK means the full length landed; otherwise ErrMsg says why not.
	OK     bool
	ErrMsg string
}

// Encode marshals the response.
func (r *RepairPullResponse) Encode(e *rpc.Encoder) {
	e.U64(r.Copied)
	e.Bool(r.OK)
	e.String(r.ErrMsg)
}

// DecodeRepairPullResponse unmarshals a RepairPullResponse.
func DecodeRepairPullResponse(d *rpc.Decoder) RepairPullResponse {
	return RepairPullResponse{
		Copied: d.U64(),
		OK:     d.Bool(),
		ErrMsg: d.String(),
	}
}

// CopyStatus is the master's repair-plane view of one copy of a region
// (primary or replica).
type CopyStatus struct {
	// Healthy means every server holding the copy is currently alive.
	Healthy bool
	// Dirty means the copy missed writes or lost its contents and must not
	// be used as a repair source.
	Dirty bool
	// UnderRepair means a repair task for this copy is in flight.
	UnderRepair bool
	// PlacementDegraded means the copy shares a node with another copy
	// (the anti-affinity fallback), so it does not add a failure domain.
	PlacementDegraded bool
}

// RegionStatus is one region's row in an MtRegionStatus response.
type RegionStatus struct {
	Info     RegionInfo
	MapCount int
	// Copies holds per-copy status: index 0 is the primary, then replicas.
	Copies []CopyStatus
	// Lost means no clean copy on live servers remains: the data is gone.
	Lost bool
}

// Encode marshals the region status.
func (r *RegionStatus) Encode(e *rpc.Encoder) {
	EncodeRegionInfo(e, &r.Info)
	e.U32(uint32(r.MapCount))
	e.Bool(r.Lost)
	e.U32(uint32(len(r.Copies)))
	for _, cs := range r.Copies {
		e.Bool(cs.Healthy)
		e.Bool(cs.Dirty)
		e.Bool(cs.UnderRepair)
		e.Bool(cs.PlacementDegraded)
	}
}

// DecodeRegionStatus unmarshals a RegionStatus.
func DecodeRegionStatus(d *rpc.Decoder) RegionStatus {
	var r RegionStatus
	info := DecodeRegionInfo(d)
	if info != nil {
		r.Info = *info
	}
	r.MapCount = int(d.U32())
	r.Lost = d.Bool()
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		r.Copies = append(r.Copies, CopyStatus{
			Healthy:           d.Bool(),
			Dirty:             d.Bool(),
			UnderRepair:       d.Bool(),
			PlacementDegraded: d.Bool(),
		})
	}
	return r
}

// DegradedReport is a client telling the master one copy of a region did
// not take a write (MtReportDegraded).
type DegradedReport struct {
	Name string
	// Copy is the copy index that missed the write: 0 = primary, 1.. =
	// replicas in order.
	Copy int
}

// Encode marshals the report.
func (r *DegradedReport) Encode(e *rpc.Encoder) {
	e.String(r.Name)
	e.U32(uint32(r.Copy))
}

// DecodeDegradedReport unmarshals a DegradedReport.
func DecodeDegradedReport(d *rpc.Decoder) DegradedReport {
	return DegradedReport{
		Name: d.String(),
		Copy: int(d.U32()),
	}
}

// TraceFetchRequest asks for every buffered span of one trace
// (MtTraceFetch to the master, MtTracePull to a memory server).
type TraceFetchRequest struct {
	Trace telemetry.TraceID
}

// Encode marshals the request.
func (r *TraceFetchRequest) Encode(e *rpc.Encoder) {
	e.U64(uint64(r.Trace))
}

// DecodeTraceFetchRequest unmarshals a TraceFetchRequest.
func DecodeTraceFetchRequest(d *rpc.Decoder) TraceFetchRequest {
	return TraceFetchRequest{Trace: telemetry.TraceID(d.U64())}
}

// TraceFetchResponse carries the spans one node (or, from the master, the
// whole cluster) buffered for a trace. Complete is false when any queried
// ring had already evicted part of the trace, or when a node could not be
// reached — the spans returned are real, but the set is known torn.
type TraceFetchResponse struct {
	Spans    []telemetry.Span
	Complete bool
}

// Encode marshals the response; spans travel in telemetry's span wire
// format nested as a byte field.
func (r *TraceFetchResponse) Encode(e *rpc.Encoder) error {
	blob, err := telemetry.MarshalSpans(r.Spans)
	if err != nil {
		return err
	}
	e.Bytes32(blob)
	e.Bool(r.Complete)
	return nil
}

// DecodeTraceFetchResponse unmarshals a TraceFetchResponse.
func DecodeTraceFetchResponse(d *rpc.Decoder) (TraceFetchResponse, error) {
	blob := d.Bytes32()
	complete := d.Bool()
	if err := d.Err(); err != nil {
		return TraceFetchResponse{}, err
	}
	spans, err := telemetry.UnmarshalSpans(blob)
	if err != nil {
		return TraceFetchResponse{}, err
	}
	return TraceFetchResponse{Spans: spans, Complete: complete}, nil
}
