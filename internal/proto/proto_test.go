package proto

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

func TestExtentSizes(t *testing.T) {
	tests := []struct {
		name   string
		size   uint64
		stripe uint64
		width  int
		want   []uint64
	}{
		{"even split", 400, 100, 4, []uint64{100, 100, 100, 100}},
		{"uneven units", 500, 100, 4, []uint64{200, 100, 100, 100}},
		// 450 = 4 full units + 50; the partial unit is global unit 4,
		// which lands on extent 4 % 4 = 0.
		{"partial tail wraps to k=0", 450, 100, 4, []uint64{150, 100, 100, 100}},
		{"single server", 450, 100, 1, []uint64{450}},
		{"region smaller than stripe", 30, 100, 4, []uint64{30, 0, 0, 0}},
		{"zero size", 0, 100, 3, []uint64{0, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ExtentSizes(tt.size, tt.stripe, tt.width)
			if err != nil {
				t.Fatalf("ExtentSizes: %v", err)
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("ExtentSizes = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestExtentSizesErrors(t *testing.T) {
	if _, err := ExtentSizes(100, 0, 2); !errors.Is(err, ErrBadStripe) {
		t.Errorf("zero stripe: %v", err)
	}
	if _, err := ExtentSizes(100, 10, 0); !errors.Is(err, ErrBadStripe) {
		t.Errorf("zero width: %v", err)
	}
}

// TestExtentSizesConserveBytes: total of extents == region size, always.
func TestExtentSizesConserveBytes(t *testing.T) {
	fn := func(sizeRaw uint32, stripeRaw uint16, widthRaw uint8) bool {
		size := uint64(sizeRaw)
		stripe := uint64(stripeRaw)%4096 + 1
		width := int(widthRaw)%12 + 1
		sizes, err := ExtentSizes(size, stripe, width)
		if err != nil {
			return false
		}
		var total uint64
		for _, s := range sizes {
			total += s
		}
		return total == size
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// buildRegion creates a striped region over the given widths for testing
// translation.
func buildRegion(size, stripe uint64, width int) *RegionInfo {
	sizes, err := ExtentSizes(size, stripe, width)
	if err != nil {
		panic(err)
	}
	r := &RegionInfo{ID: 1, Name: "t", Size: size, StripeUnit: stripe}
	for k, sz := range sizes {
		r.Extents = append(r.Extents, Extent{
			Server: simnet.NodeID(k),
			RKey:   uint32(100 + k),
			Addr:   uint64(k) * 1 << 20, // arbitrary distinct bases
			Len:    sz,
		})
	}
	return r
}

func TestFragmentsSingleStripeUnit(t *testing.T) {
	r := buildRegion(400, 100, 4)
	frags, err := r.Fragments(0, 50)
	if err != nil {
		t.Fatalf("Fragments: %v", err)
	}
	if len(frags) != 1 {
		t.Fatalf("fragments = %d, want 1", len(frags))
	}
	f := frags[0]
	if f.Server != 0 || f.Addr != 0 || f.Len != 50 || f.BufOff != 0 {
		t.Errorf("fragment = %+v", f)
	}
}

func TestFragmentsCrossStripe(t *testing.T) {
	r := buildRegion(400, 100, 4)
	// [150, 250): 50 bytes in unit 1 (server 1) + 50 bytes in unit 2 (server 2).
	frags, err := r.Fragments(150, 100)
	if err != nil {
		t.Fatalf("Fragments: %v", err)
	}
	if len(frags) != 2 {
		t.Fatalf("fragments = %+v, want 2", frags)
	}
	if frags[0].Server != 1 || frags[0].Addr != r.Extents[1].Addr+50 || frags[0].Len != 50 || frags[0].BufOff != 0 {
		t.Errorf("frag0 = %+v", frags[0])
	}
	if frags[1].Server != 2 || frags[1].Addr != r.Extents[2].Addr || frags[1].Len != 50 || frags[1].BufOff != 50 {
		t.Errorf("frag1 = %+v", frags[1])
	}
}

func TestFragmentsWrapAround(t *testing.T) {
	r := buildRegion(800, 100, 4)
	// Unit 5 is server 1 at unit-index 1.
	frags, err := r.Fragments(500, 100)
	if err != nil {
		t.Fatalf("Fragments: %v", err)
	}
	if len(frags) != 1 {
		t.Fatalf("fragments = %+v", frags)
	}
	if frags[0].Server != 1 || frags[0].Addr != r.Extents[1].Addr+100 {
		t.Errorf("frag = %+v", frags[0])
	}
}

func TestFragmentsCoalesceSingleServer(t *testing.T) {
	r := buildRegion(1000, 100, 1)
	frags, err := r.Fragments(50, 600)
	if err != nil {
		t.Fatalf("Fragments: %v", err)
	}
	if len(frags) != 1 {
		t.Fatalf("single-server region should coalesce: %+v", frags)
	}
	if frags[0].Len != 600 || frags[0].Addr != r.Extents[0].Addr+50 {
		t.Errorf("frag = %+v", frags[0])
	}
}

func TestFragmentsErrors(t *testing.T) {
	r := buildRegion(400, 100, 4)
	if _, err := r.Fragments(300, 200); !errors.Is(err, ErrBadRange) {
		t.Errorf("past end: %v", err)
	}
	if _, err := r.Fragments(401, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("offset past end: %v", err)
	}
	if _, err := r.Fragments(0, -1); !errors.Is(err, ErrBadRange) {
		t.Errorf("negative len: %v", err)
	}
	frags, err := r.Fragments(100, 0)
	if err != nil || frags != nil {
		t.Errorf("zero len = %v, %v", frags, err)
	}
}

// TestFragmentsPartitionProperty: for random ranges, fragments tile the
// buffer exactly (no gaps, no overlaps, correct total), and every fragment
// lies inside its extent.
func TestFragmentsPartitionProperty(t *testing.T) {
	fn := func(sizeRaw uint16, stripeRaw uint8, widthRaw uint8, offRaw, lenRaw uint16) bool {
		size := uint64(sizeRaw)%100000 + 1
		stripe := uint64(stripeRaw)%512 + 1
		width := int(widthRaw)%8 + 1
		r := buildRegion(size, stripe, width)
		off := uint64(offRaw) % size
		n := int(uint64(lenRaw) % (size - off + 1))
		frags, err := r.Fragments(off, n)
		if err != nil {
			return false
		}
		total := 0
		next := 0
		for _, f := range frags {
			if f.BufOff != next {
				return false
			}
			if f.Len <= 0 {
				return false
			}
			ext := r.Extents[f.Server]
			if f.Addr < ext.Addr || f.Addr+uint64(f.Len) > ext.Addr+ext.Len {
				return false
			}
			next += f.Len
			total += f.Len
		}
		return total == n
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestFragmentsBijectionProperty: distinct region offsets map to distinct
// (server, addr) pairs — the layout never aliases two bytes to one slot.
func TestFragmentsBijectionProperty(t *testing.T) {
	r := buildRegion(997, 64, 3) // deliberately non-round size
	seen := make(map[[2]uint64]uint64)
	for off := uint64(0); off < r.Size; off++ {
		frags, err := r.Fragments(off, 1)
		if err != nil {
			t.Fatalf("Fragments(%d): %v", off, err)
		}
		if len(frags) != 1 {
			t.Fatalf("Fragments(%d) = %+v", off, frags)
		}
		key := [2]uint64{uint64(frags[0].Server), frags[0].Addr}
		if prev, dup := seen[key]; dup {
			t.Fatalf("offsets %d and %d both map to %v", prev, off, key)
		}
		seen[key] = off
	}
}

func TestRegionInfoCodec(t *testing.T) {
	r := &RegionInfo{
		ID:         42,
		Name:       "graph/edges",
		Size:       1 << 30,
		StripeUnit: 1 << 20,
		Generation: 7,
		Extents: []Extent{
			{Server: 1, RKey: 10, Addr: 0, Len: 512 << 20},
			{Server: 2, RKey: 11, Addr: 4096, Len: 512 << 20},
		},
		Replicas: [][]Extent{
			{
				{Server: 3, RKey: 12, Addr: 0, Len: 512 << 20},
				{Server: 4, RKey: 13, Addr: 0, Len: 512 << 20},
			},
		},
	}
	var e rpc.Encoder
	EncodeRegionInfo(&e, r)
	d := rpc.NewDecoder(e.Bytes())
	got := DecodeRegionInfo(d)
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, r)
	}
}

func TestAllocRequestCodec(t *testing.T) {
	a := AllocRequest{Name: "x", Size: 100, StripeUnit: 10, StripeWidth: 3, Replicas: 2}
	var e rpc.Encoder
	a.Encode(&e)
	d := rpc.NewDecoder(e.Bytes())
	got := DecodeAllocRequest(d)
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != a {
		t.Errorf("round trip = %+v, want %+v", got, a)
	}
}

func TestServerInfoCodec(t *testing.T) {
	tests := []struct {
		name string
		info ServerInfo
	}{
		{"alive", ServerInfo{Node: 7, Capacity: 1 << 30, Used: 123, Alive: true}},
		{"dead", ServerInfo{Node: 2, Capacity: 64 << 20, Used: 0, Alive: false}},
		{"bounced", ServerInfo{Node: 1, Capacity: 1 << 20, Used: 1 << 19, Alive: true, Epoch: 3}},
		{"zero", ServerInfo{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var e rpc.Encoder
			tt.info.Encode(&e)
			d := rpc.NewDecoder(e.Bytes())
			got := DecodeServerInfo(d)
			if err := d.Err(); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got != tt.info {
				t.Errorf("round trip = %+v, want %+v", got, tt.info)
			}
			if d.Remaining() != 0 {
				t.Errorf("remaining = %d bytes after decode", d.Remaining())
			}
		})
	}
}

func TestRegionHelpers(t *testing.T) {
	r := buildRegion(400, 100, 4)
	if got := r.HomeServer(); got != 0 {
		t.Errorf("HomeServer = %v", got)
	}
	if got := r.Servers(); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Errorf("Servers = %v", got)
	}
	empty := &RegionInfo{}
	if got := empty.HomeServer(); got != -1 {
		t.Errorf("empty HomeServer = %v", got)
	}
}

func TestReplicaFragments(t *testing.T) {
	r := buildRegion(400, 100, 2)
	r.Replicas = [][]Extent{{
		{Server: 5, RKey: 50, Addr: 1000, Len: 200},
		{Server: 6, RKey: 60, Addr: 2000, Len: 200},
	}}
	// [150, 250): tail of unit 1 (extent 1 → server 6) then head of unit 2
	// (extent 0 at unit-index 1 → server 5, addr 1000+100).
	frags, err := r.ReplicaFragments(0, 150, 100)
	if err != nil {
		t.Fatalf("ReplicaFragments: %v", err)
	}
	if len(frags) != 2 || frags[0].Server != 6 || frags[0].Addr != 2050 || frags[1].Server != 5 || frags[1].Addr != 1100 {
		t.Errorf("frags = %+v", frags)
	}
	if _, err := r.ReplicaFragments(1, 0, 10); !errors.Is(err, ErrBadRange) {
		t.Errorf("bad replica index: %v", err)
	}
}

func TestCopies(t *testing.T) {
	r := buildRegion(400, 100, 2)
	r.Replicas = [][]Extent{{{Server: 5, RKey: 50, Addr: 0, Len: 400}}}
	copies := r.Copies()
	if len(copies) != 2 {
		t.Fatalf("Copies = %d sets, want 2", len(copies))
	}
	if !reflect.DeepEqual(copies[0], r.Extents) || !reflect.DeepEqual(copies[1], r.Replicas[0]) {
		t.Errorf("Copies = %+v", copies)
	}
}

func TestRepairPullCodecs(t *testing.T) {
	req := RepairPullRequest{
		Source:          Extent{Server: 3, RKey: 9, Addr: 4096, Len: 1 << 20},
		DestAddr:        8192,
		Len:             1 << 20,
		StartOff:        512 << 10,
		ChunkSize:       64 << 10,
		RateBytesPerSec: 1 << 30,
	}
	var e rpc.Encoder
	req.Encode(&e)
	d := rpc.NewDecoder(e.Bytes())
	gotReq := DecodeRepairPullRequest(d)
	if err := d.Err(); err != nil {
		t.Fatalf("decode request: %v", err)
	}
	if gotReq != req {
		t.Errorf("request round trip = %+v, want %+v", gotReq, req)
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d bytes after request decode", d.Remaining())
	}

	for _, resp := range []RepairPullResponse{
		{Copied: 1 << 20, OK: true},
		{Copied: 4096, OK: false, ErrMsg: "source unreachable"},
	} {
		var e2 rpc.Encoder
		resp.Encode(&e2)
		d2 := rpc.NewDecoder(e2.Bytes())
		got := DecodeRepairPullResponse(d2)
		if err := d2.Err(); err != nil {
			t.Fatalf("decode response: %v", err)
		}
		if got != resp {
			t.Errorf("response round trip = %+v, want %+v", got, resp)
		}
	}
}

func TestRegionStatusCodec(t *testing.T) {
	st := RegionStatus{
		Info: RegionInfo{
			ID: 9, Name: "app/x", Size: 4096, StripeUnit: 1024, Generation: 2,
			Extents:  []Extent{{Server: 1, RKey: 4, Addr: 0, Len: 4096}},
			Replicas: [][]Extent{{{Server: 2, RKey: 5, Addr: 0, Len: 4096}}},
		},
		MapCount: 3,
		Copies: []CopyStatus{
			{Healthy: true},
			{Healthy: false, Dirty: true, UnderRepair: true, PlacementDegraded: true},
		},
		Lost: false,
	}
	var e rpc.Encoder
	st.Encode(&e)
	d := rpc.NewDecoder(e.Bytes())
	got := DecodeRegionStatus(d)
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, st)
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d bytes after decode", d.Remaining())
	}
}

func TestDegradedReportCodec(t *testing.T) {
	rep := DegradedReport{Name: "app/y", Copy: 2}
	var e rpc.Encoder
	rep.Encode(&e)
	d := rpc.NewDecoder(e.Bytes())
	got := DecodeDegradedReport(d)
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != rep {
		t.Errorf("round trip = %+v, want %+v", got, rep)
	}
}
