package proto

import (
	"fmt"
	"strings"

	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// This file defines the wire format of the master replication group: the
// metadata log streamed from the primary to its standbys (MtReplAppend),
// the snapshot that opens a stream (MtReplHello), the replica status probe
// (MtMasterStatus), and the fencing error a non-primary returns to
// client-facing RPCs.

// ReplKind tags one metadata log record.
type ReplKind uint8

// Record kinds. Every state transition the master commits is streamed as
// exactly one of these; standbys apply them in sequence order and never
// re-derive state (e.g. dirtiness) on their own.
const (
	// ReplServer registers or updates a memory server (capacity, rkey,
	// incarnation epoch). Alive is implied true.
	ReplServer ReplKind = iota + 1
	// ReplServerDead marks a server dead (heartbeat sweep).
	ReplServerDead
	// ReplServerAlive revives a server without an incarnation bump (a
	// heartbeat from the same incarnation after a spurious death).
	ReplServerAlive
	// ReplRegion creates a region: full layout plus the allocation
	// idempotency token.
	ReplRegion
	// ReplRegionFree deletes a region and returns its extents.
	ReplRegionFree
	// ReplMapCount sets a region's map count (absolute, not a delta).
	ReplMapCount
	// ReplDirty marks one copy of a region dirty; Provisional means the
	// dirt came from a death sweep and a same-incarnation heartbeat may
	// absolve it.
	ReplDirty
	// ReplClean clears one copy's dirty flag (absolution).
	ReplClean
	// ReplLost sets or clears a region's lost latch.
	ReplLost
	// ReplCommit applies a finished repair: the copy's new extents (empty
	// when repaired in place), the region's new generation, and the
	// resulting degraded/dirty flags.
	ReplCommit
)

// ReplRecord is one entry of the replicated metadata log. It is a union:
// which fields are meaningful depends on Kind, but every field travels on
// the wire so the codec stays kind-agnostic.
type ReplRecord struct {
	Kind ReplKind

	// Server fields (ReplServer*).
	Node        simnet.NodeID
	Capacity    uint64
	RKey        uint32
	ServerEpoch uint64

	// Region fields. Name keys the region on both ends (regions are stored
	// by name); Region rides along for sanity checks.
	Region RegionID
	Name   string
	Info   *RegionInfo // ReplRegion only
	Token  uint64      // ReplRegion: allocation idempotency token
	Count  int         // ReplMapCount: absolute map count
	// DegradedCopies carries the per-copy placement-degraded flags decided
	// at allocation time (ReplRegion only); followers cannot re-derive them
	// without replaying placement.
	DegradedCopies []bool

	// Copy-scoped fields (ReplDirty/ReplClean/ReplCommit): 0 = primary,
	// 1.. = replicas.
	Copy        int
	Provisional bool // ReplDirty: death-sweep dirt, absolvable
	Lost        bool // ReplLost: latch value

	// Repair commit fields (ReplCommit).
	Extents    []Extent // nil/empty = repaired in place, layout unchanged
	Generation uint64
	Degraded   bool // copy landed on a placement-degraded node
	StillDirty bool // copy was re-dirtied during the repair
}

// EncodeReplRecord appends one log record.
func EncodeReplRecord(e *rpc.Encoder, r *ReplRecord) {
	e.U8(uint8(r.Kind))
	e.I64(int64(r.Node))
	e.U64(r.Capacity)
	e.U32(r.RKey)
	e.U64(r.ServerEpoch)
	e.U64(uint64(r.Region))
	e.String(r.Name)
	if r.Info != nil {
		e.Bool(true)
		EncodeRegionInfo(e, r.Info)
	} else {
		e.Bool(false)
	}
	e.U64(r.Token)
	e.U32(uint32(r.Count))
	encodeBools(e, r.DegradedCopies)
	e.U32(uint32(r.Copy))
	e.Bool(r.Provisional)
	e.Bool(r.Lost)
	encodeExtents(e, r.Extents)
	e.U64(r.Generation)
	e.Bool(r.Degraded)
	e.Bool(r.StillDirty)
}

// DecodeReplRecord reads one log record.
func DecodeReplRecord(d *rpc.Decoder) ReplRecord {
	r := ReplRecord{
		Kind:        ReplKind(d.U8()),
		Node:        simnet.NodeID(d.I64()),
		Capacity:    d.U64(),
		RKey:        d.U32(),
		ServerEpoch: d.U64(),
		Region:      RegionID(d.U64()),
		Name:        d.String(),
	}
	if d.Bool() {
		r.Info = DecodeRegionInfo(d)
	}
	r.Token = d.U64()
	r.Count = int(d.U32())
	r.DegradedCopies = decodeBools(d)
	r.Copy = int(d.U32())
	r.Provisional = d.Bool()
	r.Lost = d.Bool()
	r.Extents = decodeExtents(d)
	r.Generation = d.U64()
	r.Degraded = d.Bool()
	r.StillDirty = d.Bool()
	return r
}

// ReplAppend is the primary's log-stream message (MtReplAppend). Seq is the
// log sequence number of the first record; an empty Records slice is a pure
// lease-renewal beat.
type ReplAppend struct {
	Epoch   uint64
	Seq     uint64
	Records []ReplRecord
}

// Encode marshals the append.
func (a *ReplAppend) Encode(e *rpc.Encoder) {
	e.U64(a.Epoch)
	e.U64(a.Seq)
	e.U32(uint32(len(a.Records)))
	for i := range a.Records {
		EncodeReplRecord(e, &a.Records[i])
	}
}

// DecodeReplAppend unmarshals a ReplAppend.
func DecodeReplAppend(d *rpc.Decoder) ReplAppend {
	a := ReplAppend{Epoch: d.U64(), Seq: d.U64()}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		a.Records = append(a.Records, DecodeReplRecord(d))
	}
	return a
}

// ReplAck is a standby's reply to MtReplHello and MtReplAppend. A rejection
// (OK=false) carries the standby's current epoch and believed leader so a
// fenced primary can step down toward the right successor; NeedSnapshot
// asks the primary to restart the stream with a fresh MtReplHello.
type ReplAck struct {
	OK           bool
	NeedSnapshot bool
	Epoch        uint64
	Leader       simnet.NodeID
}

// Encode marshals the ack.
func (a *ReplAck) Encode(e *rpc.Encoder) {
	e.Bool(a.OK)
	e.Bool(a.NeedSnapshot)
	e.U64(a.Epoch)
	e.I64(int64(a.Leader))
}

// DecodeReplAck unmarshals a ReplAck.
func DecodeReplAck(d *rpc.Decoder) ReplAck {
	return ReplAck{
		OK:           d.Bool(),
		NeedSnapshot: d.Bool(),
		Epoch:        d.U64(),
		Leader:       simnet.NodeID(d.I64()),
	}
}

// SnapServer is one memory server's replicated state in a snapshot.
type SnapServer struct {
	Node     simnet.NodeID
	Capacity uint64
	RKey     uint32
	Epoch    uint64
	Alive    bool
}

// SnapRegion is one region's replicated state in a snapshot. Per-copy
// slices are indexed primary-first like RegionInfo.Copies.
type SnapRegion struct {
	Info       RegionInfo
	MapCount   int
	AllocToken uint64
	Dirty      []bool
	DirtyEpoch []uint64
	DeathEpoch []uint64
	Degraded   []bool
	Lost       bool
}

// MasterSnapshot is the full metadata state a primary ships to a standby
// when (re)opening its replication stream. NextSeq positions the follower
// in the log; NextID seeds the region ID allocator.
type MasterSnapshot struct {
	Epoch   uint64
	NextSeq uint64
	NextID  uint64
	Servers []SnapServer
	Regions []SnapRegion
}

func encodeBools(e *rpc.Encoder, bs []bool) {
	e.U32(uint32(len(bs)))
	for _, b := range bs {
		e.Bool(b)
	}
}

func decodeBools(d *rpc.Decoder) []bool {
	n := d.U32()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]bool, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, d.Bool())
	}
	return out
}

func encodeU64s(e *rpc.Encoder, vs []uint64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

func decodeU64s(d *rpc.Decoder) []uint64 {
	n := d.U32()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, d.U64())
	}
	return out
}

// Encode marshals the snapshot.
func (s *MasterSnapshot) Encode(e *rpc.Encoder) {
	e.U64(s.Epoch)
	e.U64(s.NextSeq)
	e.U64(s.NextID)
	e.U32(uint32(len(s.Servers)))
	for _, sv := range s.Servers {
		e.I64(int64(sv.Node))
		e.U64(sv.Capacity)
		e.U32(sv.RKey)
		e.U64(sv.Epoch)
		e.Bool(sv.Alive)
	}
	e.U32(uint32(len(s.Regions)))
	for i := range s.Regions {
		r := &s.Regions[i]
		EncodeRegionInfo(e, &r.Info)
		e.U32(uint32(r.MapCount))
		e.U64(r.AllocToken)
		encodeBools(e, r.Dirty)
		encodeU64s(e, r.DirtyEpoch)
		encodeU64s(e, r.DeathEpoch)
		encodeBools(e, r.Degraded)
		e.Bool(r.Lost)
	}
}

// DecodeMasterSnapshot unmarshals a MasterSnapshot.
func DecodeMasterSnapshot(d *rpc.Decoder) MasterSnapshot {
	s := MasterSnapshot{
		Epoch:   d.U64(),
		NextSeq: d.U64(),
		NextID:  d.U64(),
	}
	ns := d.U32()
	for i := uint32(0); i < ns && d.Err() == nil; i++ {
		s.Servers = append(s.Servers, SnapServer{
			Node:     simnet.NodeID(d.I64()),
			Capacity: d.U64(),
			RKey:     d.U32(),
			Epoch:    d.U64(),
			Alive:    d.Bool(),
		})
	}
	nr := d.U32()
	for i := uint32(0); i < nr && d.Err() == nil; i++ {
		var r SnapRegion
		if info := DecodeRegionInfo(d); info != nil {
			r.Info = *info
		}
		r.MapCount = int(d.U32())
		r.AllocToken = d.U64()
		r.Dirty = decodeBools(d)
		r.DirtyEpoch = decodeU64s(d)
		r.DeathEpoch = decodeU64s(d)
		r.Degraded = decodeBools(d)
		r.Lost = d.Bool()
		s.Regions = append(s.Regions, r)
	}
	return s
}

// MasterStatus is one master replica's answer to MtMasterStatus.
type MasterStatus struct {
	Node simnet.NodeID
	// Role is "primary" or "standby".
	Role  string
	Epoch uint64
	// Primary is the node this replica believes leads the group (-1 when
	// unknown, e.g. a standby that has not heard from any primary yet).
	Primary simnet.NodeID
}

// Encode marshals the status.
func (m *MasterStatus) Encode(e *rpc.Encoder) {
	e.I64(int64(m.Node))
	e.String(m.Role)
	e.U64(m.Epoch)
	e.I64(int64(m.Primary))
}

// DecodeMasterStatus unmarshals a MasterStatus.
func DecodeMasterStatus(d *rpc.Decoder) MasterStatus {
	return MasterStatus{
		Node:    simnet.NodeID(d.I64()),
		Role:    d.String(),
		Epoch:   d.U64(),
		Primary: simnet.NodeID(d.I64()),
	}
}

// notPrimaryPrefix is the marker clients grep for in remote errors to tell
// "wrong master replica" from genuine request failures.
const notPrimaryPrefix = "master: not primary"

// NotPrimaryError builds the fencing error a non-primary master replica
// returns to client-facing RPCs. The believed primary and epoch ride along
// as a redirect hint (primary -1 = unknown).
func NotPrimaryError(primary simnet.NodeID, epoch uint64) error {
	return fmt.Errorf("%s (primary=%d epoch=%d)", notPrimaryPrefix, int64(primary), epoch)
}

// IsNotPrimaryMsg reports whether a remote error message is the fencing
// error, and if so extracts the redirect hint. ok is true whenever the
// marker is present, even if the hint fails to parse (primary then -1).
func IsNotPrimaryMsg(msg string) (primary simnet.NodeID, epoch uint64, ok bool) {
	i := strings.Index(msg, notPrimaryPrefix)
	if i < 0 {
		return -1, 0, false
	}
	var p, ep int64
	if _, err := fmt.Sscanf(msg[i:], notPrimaryPrefix+" (primary=%d epoch=%d)", &p, &ep); err != nil {
		return -1, 0, true
	}
	return simnet.NodeID(p), uint64(ep), true
}
