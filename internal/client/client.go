// Package client implements the RStore client library: the memory-like API
// the paper exposes to applications.
//
// The API follows the paper's separation philosophy:
//
//   - Control path (slow, amortized): Alloc reserves a named, striped
//     region of cluster DRAM at the master; Map fetches its metadata and
//     lazily establishes one-sided queue pairs to each memory server the
//     region touches; AllocBuf registers local memory with the NIC.
//   - Data path (fast, constant): ReadAt/WriteAt/FetchAdd translate region
//     offsets to server fragments with a local table lookup and issue
//     one-sided RDMA operations. No master, no server CPU, no metadata
//     traffic.
//
// All control-path work is metered in ControlStats (modeled virtual time),
// which the benchmark harness uses for the paper's control-path figures.
package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Client-level errors.
var (
	ErrClosed       = errors.New("client: closed")
	ErrRegionClosed = errors.New("client: region unmapped")
	ErrIOFailed     = errors.New("client: io failed")

	// ErrRegionExists / ErrRegionNotFound mirror the master's errors across
	// the RPC boundary (matched by message prefix).
	ErrRegionExists   = errors.New("client: region already exists")
	ErrRegionNotFound = errors.New("client: region not found")

	// ErrRegionLost means a region's memory server is gone for good: the
	// master has declared it dead, so retrying cannot help. Holders of the
	// region must re-Alloc (contents are lost — RStore is a store, not a
	// durable database).
	ErrRegionLost = errors.New("client: region lost (server dead)")

	// ErrStaleGeneration means a one-sided access failed against a layout
	// the repair plane has since replaced. The client remaps transparently
	// and retries once; this error surfaces only when the retry against
	// the fresh layout also failed.
	ErrStaleGeneration = errors.New("client: stale region generation")

	// ErrMasterUnavailable means no master replica could be reached — or
	// none would serve as primary — within the client's retry budget.
	// One-sided data-path I/O keeps working off leased layouts during a
	// master outage; only control-plane calls fail with this sentinel.
	ErrMasterUnavailable = errors.New("client: master unavailable")
)

// errNotPrimary marks a master replica that answered but is not the
// primary. The retry loop re-homes to the redirect hint and tries again;
// the sentinel surfaces (wrapped in ErrMasterUnavailable) only when no
// replica would serve within the retry budget.
var errNotPrimary = errors.New("client: master replica is not primary")

// Config tunes a client.
type Config struct {
	// Master is the node the master runs on.
	Master simnet.NodeID
	// Masters, when set, is the full master replication group. The client
	// homes on whichever replica answers as primary, chasing not-primary
	// redirects after a failover. Empty means the single Master above.
	Masters []simnet.NodeID
	// RPC tunes the master control connection.
	RPC rpc.Options
	// StagingChunk is the size of each staging buffer backing the []byte
	// convenience Read/Write path. Default 1 MiB.
	StagingChunk int
	// StagingCount is how many staging chunks to register. Default 4.
	StagingCount int
	// QPDepth is the send-queue depth per server connection. Default 512.
	QPDepth int
	// Retry governs control-plane retries (master RPCs and re-dials).
	// Zero-valued fields take DefaultRetryPolicy values.
	Retry RetryPolicy
}

// masters returns the configured master group (the single Master when no
// group was given).
func (c Config) masters() []simnet.NodeID {
	if len(c.Masters) > 0 {
		return c.Masters
	}
	return []simnet.NodeID{c.Master}
}

func (c Config) withDefaults() Config {
	if c.StagingChunk <= 0 {
		c.StagingChunk = 1 << 20
	}
	if c.StagingCount <= 0 {
		c.StagingCount = 4
	}
	if c.QPDepth <= 0 {
		c.QPDepth = 512
	}
	return c
}

// ControlStats meters the modeled cost of control-path operations. All
// durations are virtual (cost-model) time.
type ControlStats struct {
	RPCTime      time.Duration
	ConnectTime  time.Duration
	RegisterTime time.Duration
	RPCs         int
	Connects     int
	Registers    int
}

// Total returns the summed modeled control time.
func (s ControlStats) Total() time.Duration {
	return s.RPCTime + s.ConnectTime + s.RegisterTime
}

// Sub returns the difference s - o, for measuring a single operation.
func (s ControlStats) Sub(o ControlStats) ControlStats {
	return ControlStats{
		RPCTime:      s.RPCTime - o.RPCTime,
		ConnectTime:  s.ConnectTime - o.ConnectTime,
		RegisterTime: s.RegisterTime - o.RegisterTime,
		RPCs:         s.RPCs - o.RPCs,
		Connects:     s.Connects - o.Connects,
		Registers:    s.Registers - o.Registers,
	}
}

// clientCounters holds the client's telemetry handles, resolved once at
// Connect so the data path never touches the registry's lock.
type clientCounters struct {
	reads      *telemetry.Counter // completed read operations
	writes     *telemetry.Counter // completed write operations
	atomics    *telemetry.Counter // completed fetch-add / compare-swap ops
	ioFailures *telemetry.Counter // data-path operations that returned an error
	remaps     *telemetry.Counter // Remap recovery attempts
	retries    *telemetry.Counter // control-plane retry attempts (after backoff)
	redials    *telemetry.Counter // master control-connection re-dials

	degradedWrites *telemetry.Counter // writes that succeeded on a strict subset of copies
	readFailovers  *telemetry.Counter // reads served by a replica after the primary failed
	staleRemaps    *telemetry.Counter // remaps that discovered a bumped generation
	slowOps        *telemetry.Counter // ops the flight recorder promoted (slow or failed)

	readLat   *telemetry.Histogram // modeled read latency
	writeLat  *telemetry.Histogram // modeled write latency
	atomicLat *telemetry.Histogram // modeled atomic latency
}

// Client is an RStore client endpoint on one fabric node.
type Client struct {
	cfg    Config
	dev    *rdma.Device
	pd     *rdma.PD
	retry  *retrier
	ctr    clientCounters
	tracer *telemetry.Tracer

	// vnow is the client's virtual-time cursor: the modeled completion of
	// its most recent data-path operation. Operations are timestamped from
	// it, so a synchronous caller's ops chain and measured latencies are
	// per-operation service times.
	vnow atomicVTime

	// allocSeq numbers Alloc idempotency tokens (unique per client).
	allocSeq atomic.Uint64

	mu        sync.Mutex
	closed    bool
	preferred simnet.NodeID // master replica currently believed primary
	master    *rpc.Conn     // replaced on re-dial after a connection failure
	conns     map[simnet.NodeID]*serverConn
	epochs    map[simnet.NodeID]uint64 // last observed master epoch per server
	notify    map[simnet.NodeID]*notifyConn
	regions   map[proto.RegionID][]*Region // mapped handles, for invalidation push
	ctrl      ControlStats
	staging   chan *Buf
}

// registerRegion indexes a mapped handle so invalidation pushes can find it.
func (c *Client) registerRegion(r *Region) {
	id := r.Info().ID
	c.mu.Lock()
	c.regions[id] = append(c.regions[id], r)
	c.mu.Unlock()
}

// unregisterRegion drops an unmapped handle from the invalidation index.
func (c *Client) unregisterRegion(r *Region) {
	id := r.Info().ID
	c.mu.Lock()
	rs := c.regions[id]
	for i, cur := range rs {
		if cur == r {
			c.regions[id] = append(rs[:i], rs[i+1:]...)
			break
		}
	}
	if len(c.regions[id]) == 0 {
		delete(c.regions, id)
	}
	c.mu.Unlock()
}

// invalidateRegion marks every mapped handle of the region stale; the next
// data-path operation remaps before issuing. Called from notify receive
// loops when the repair plane pushes a layout change.
func (c *Client) invalidateRegion(id proto.RegionID) {
	c.mu.Lock()
	rs := append([]*Region(nil), c.regions[id]...)
	c.mu.Unlock()
	for _, r := range rs {
		r.stale.Store(true)
	}
}

// VNow returns the client's virtual-time cursor.
func (c *Client) VNow() simnet.VTime { return c.vnow.load() }

// advanceVNow lifts the cursor to at least v.
func (c *Client) advanceVNow(v simnet.VTime) { c.vnow.max(v) }

// Connect opens a client on the device and dials the master.
func Connect(ctx context.Context, dev *rdma.Device, cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	pd := dev.AllocPD()
	tel := dev.Telemetry()
	c := &Client{
		cfg:   cfg,
		dev:   dev,
		pd:    pd,
		retry: newRetrier(cfg.Retry),
		ctr: clientCounters{
			reads:      tel.Counter("client.reads"),
			writes:     tel.Counter("client.writes"),
			atomics:    tel.Counter("client.atomics"),
			ioFailures: tel.Counter("client.io_failures"),
			remaps:     tel.Counter("client.remaps"),
			retries:    tel.Counter("client.retries"),
			redials:    tel.Counter("client.redials"),

			degradedWrites: tel.Counter("client.degraded_writes"),
			readFailovers:  tel.Counter("client.read_failovers"),
			staleRemaps:    tel.Counter("client.stale_generation_remaps"),
			slowOps:        tel.Counter("client.slow_ops"),

			readLat:   tel.Histogram("client.read_latency"),
			writeLat:  tel.Histogram("client.write_latency"),
			atomicLat: tel.Histogram("client.atomic_latency"),
		},
		tracer:  tel.Tracer(),
		conns:   make(map[simnet.NodeID]*serverConn),
		epochs:  make(map[simnet.NodeID]uint64),
		notify:  make(map[simnet.NodeID]*notifyConn),
		regions: make(map[proto.RegionID][]*Region),
		staging: make(chan *Buf, cfg.StagingCount),
	}
	c.retry.onRetry = c.ctr.retries.Inc
	c.preferred = cfg.masters()[0]
	master, err := c.dialAnyMaster(ctx)
	if err != nil {
		return nil, fmt.Errorf("client: dial master: %w", err)
	}
	c.master = master
	// Join the fabric's virtual timeline at connect time.
	c.advanceVNow(dev.Network().Fabric().VNow())
	for i := 0; i < cfg.StagingCount; i++ {
		b, err := c.AllocBuf(cfg.StagingChunk)
		if err != nil {
			master.Close()
			return nil, fmt.Errorf("client: staging: %w", err)
		}
		c.staging <- b
	}
	return c, nil
}

// Device returns the client's device.
func (c *Client) Device() *rdma.Device { return c.dev }

// Telemetry returns the node's metric registry (shared with every layer
// running on the client's device).
func (c *Client) Telemetry() *telemetry.Registry { return c.dev.Telemetry() }

// opTrace is one data-path operation's tracing decision: its trace, the
// envelope span covering the whole op, and whether the trace is
// provisional (minted only so the flight recorder can promote the op if
// it turns out slow — buffered, never recorded unless promoted).
type opTrace struct {
	id          telemetry.TraceID
	span        telemetry.SpanID // envelope span (parent of io.* fragments)
	parent      telemetry.SpanID // caller's span from ctx, when nested
	provisional bool
}

// startOp makes the tracing decision for a data-path operation starting
// now: a ctx-propagated trace wins, then head sampling, then — when the
// flight recorder is armed — a provisional trace that costs the tracer
// nothing unless the op exceeds the slow threshold or fails. Costs two
// atomic loads when tracing and the recorder are both off.
func (c *Client) startOp(ctx context.Context) opTrace {
	if id := telemetry.TraceFrom(ctx); id != 0 {
		return opTrace{id: id, span: c.tracer.NewSpan(), parent: telemetry.SpanFrom(ctx)}
	}
	if id, ok := c.tracer.NewTrace(); ok {
		return opTrace{id: id, span: c.tracer.NewSpan()}
	}
	if c.tracer.Armed() {
		return opTrace{id: c.tracer.ProvisionalTrace(), span: c.tracer.NewSpan(), provisional: true}
	}
	return opTrace{}
}

// opKind tags data-path operations for telemetry.
type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opAtomic
)

func (k opKind) spanName() string {
	switch k {
	case opRead:
		return "client.read"
	case opWrite:
		return "client.write"
	default:
		return "client.atomic"
	}
}

// recordOp folds one completed data-path operation into the client's
// telemetry: an outcome counter, the per-kind latency histogram, and — when
// the operation is traced — an envelope span covering its virtual-time
// extent plus the buffered io.* fragment spans. Slow or failed operations
// are additionally pinned in the flight recorder when it is armed;
// provisional traces exist only for that promotion and are dropped
// otherwise.
func (c *Client) recordOp(kind opKind, ot opTrace, st IOStat, err error, frags []telemetry.Span) {
	failed := err != nil
	if failed {
		c.ctr.ioFailures.Inc()
	} else {
		lat := st.Latency().Duration()
		switch kind {
		case opRead:
			c.ctr.reads.Inc()
			c.ctr.readLat.Record(lat)
		case opWrite:
			c.ctr.writes.Inc()
			c.ctr.writeLat.Record(lat)
		case opAtomic:
			c.ctr.atomics.Inc()
			c.ctr.atomicLat.Record(lat)
		}
	}
	if ot.id == 0 {
		return
	}
	env := telemetry.Span{
		Trace: ot.id, ID: ot.span, Parent: ot.parent,
		Name: kind.spanName(), StartV: st.PostedV, EndV: st.DoneV,
	}
	if failed {
		env.Err = err.Error()
	}
	thr := c.tracer.SlowOpThreshold()
	slow := thr > 0 && (failed || st.Latency().Duration() >= thr)
	if ot.provisional {
		if slow {
			c.ctr.slowOps.Inc()
			c.tracer.Pin(append(frags, env))
		}
		return
	}
	for _, s := range frags {
		c.tracer.Record(s)
	}
	c.tracer.Record(env)
	if slow {
		c.ctr.slowOps.Inc()
		c.tracer.Pin(append(frags, env))
	}
}

// Node returns the client's fabric node.
func (c *Client) Node() simnet.NodeID { return c.dev.Node() }

// ControlStats returns a snapshot of the accumulated modeled control cost.
func (c *Client) ControlStats() ControlStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrl
}

func (c *Client) chargeRPC(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctrl.RPCTime += d
	c.ctrl.RPCs++
}

func (c *Client) chargeConnect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctrl.ConnectTime += c.dev.Costs().ConnectTime(c.dev.Network().Fabric().Params())
	c.ctrl.Connects++
}

func (c *Client) chargeRegister(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctrl.RegisterTime += c.dev.Costs().RegisterTime(n)
	c.ctrl.Registers++
}

// Close tears down all connections. Mapped regions become unusable.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.conns = make(map[simnet.NodeID]*serverConn)
	notifies := make([]*notifyConn, 0, len(c.notify))
	for _, nc := range c.notify {
		notifies = append(notifies, nc)
	}
	c.notify = make(map[simnet.NodeID]*notifyConn)
	master := c.master
	c.mu.Unlock()

	for _, sc := range conns {
		sc.close()
	}
	for _, nc := range notifies {
		nc.close()
	}
	if master != nil {
		master.Close()
	}
}

func (c *Client) checkOpen() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return nil
}

// dialAnyMaster dials the preferred master replica, falling back to the
// rest of the configured group in order. A successful dial re-homes the
// preference; a standby answering is fine — the first call against it
// returns a not-primary redirect and the client chases the hint. When
// every replica is unreachable the error wraps ErrMasterUnavailable.
func (c *Client) dialAnyMaster(ctx context.Context) (*rpc.Conn, error) {
	c.mu.Lock()
	pref := c.preferred
	c.mu.Unlock()
	candidates := []simnet.NodeID{pref}
	for _, n := range c.cfg.masters() {
		if n != pref {
			candidates = append(candidates, n)
		}
	}
	var lastErr error
	for _, node := range candidates {
		conn, err := rpc.Dial(ctx, c.dev, node, proto.MasterService, c.pd, c.cfg.RPC)
		if err != nil {
			lastErr = err
			continue
		}
		c.chargeConnect()
		c.mu.Lock()
		c.preferred = node
		c.mu.Unlock()
		return conn, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrMasterUnavailable, lastErr)
}

// noteNotPrimary re-homes the client after a not-primary redirect: adopt
// the hinted leader (or rotate to the next configured replica when the
// hint is unknown) and retire the control connection so the next attempt
// dials the new preference.
func (c *Client) noteNotPrimary(conn *rpc.Conn, hint simnet.NodeID) {
	c.mu.Lock()
	if hint >= 0 {
		c.preferred = hint
	} else {
		ms := c.cfg.masters()
		for i, n := range ms {
			if n == c.preferred {
				c.preferred = ms[(i+1)%len(ms)]
				break
			}
		}
	}
	var old *rpc.Conn
	if c.master == conn {
		old = c.master
		c.master = nil
	}
	c.mu.Unlock()
	if old != nil {
		go old.Close()
	}
}

// masterConn returns the control connection, re-dialing when the current
// one has failed (the QP of a partitioned or bounced master dies
// permanently; recovery is a fresh connection) or was retired by a
// not-primary redirect.
func (c *Client) masterConn(ctx context.Context) (*rpc.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	cur := c.master
	c.mu.Unlock()
	if cur != nil && cur.Err() == nil {
		return cur, nil
	}

	c.ctr.redials.Inc()
	fresh, err := c.dialAnyMaster(ctx)
	if err != nil {
		return nil, fmt.Errorf("client: redial master: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		go fresh.Close()
		return nil, ErrClosed
	}
	if c.master != cur && c.master != nil && c.master.Err() == nil {
		// Another caller re-dialed first; keep theirs.
		go fresh.Close()
		return c.master, nil
	}
	old := c.master
	c.master = fresh
	if old != nil {
		go old.Close()
	}
	return fresh, nil
}

// call wraps a master RPC with control-time accounting, error mapping, and
// the client's retry policy. Transport failures (QP death, partitions,
// per-call timeouts) re-dial and retry with capped backoff; remote business
// errors surface immediately.
func (c *Client) call(ctx context.Context, mt uint16, req []byte) ([]byte, error) {
	if err := c.checkOpen(); err != nil {
		return nil, err
	}
	var resp []byte
	err := c.retry.do(ctx, func(ctx context.Context) error {
		conn, err := c.masterConn(ctx)
		if err != nil {
			return err
		}
		r, lat, err := conn.Call(ctx, mt, req)
		c.chargeRPC(lat)
		if err != nil {
			var re *rpc.RemoteError
			if errors.As(err, &re) {
				if p, _, ok := proto.IsNotPrimaryMsg(re.Msg); ok {
					// A standby (or fenced stale primary) answered: re-home
					// to the hinted leader and retry there.
					c.noteNotPrimary(conn, p)
					return fmt.Errorf("%w: %s", errNotPrimary, re.Msg)
				}
			}
			return mapMasterError(err)
		}
		resp = r
		return nil
	})
	if err != nil {
		// Retries exhausted without reaching a serving primary: a transport
		// failure class (or an unresolved redirect loop) means the master
		// group is effectively unavailable to this client right now.
		if errors.Is(err, errNotPrimary) ||
			(retryable(err) && !errors.Is(err, ErrMasterUnavailable)) {
			err = fmt.Errorf("%w: %v", ErrMasterUnavailable, err)
		}
		return nil, err
	}
	return resp, nil
}

// mapMasterError turns remote master errors into the client's typed
// sentinels so callers can use errors.Is across the RPC boundary.
func mapMasterError(err error) error {
	var re *rpc.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	switch {
	case strings.Contains(re.Msg, "already exists"):
		return fmt.Errorf("%w: %s", ErrRegionExists, re.Msg)
	case strings.Contains(re.Msg, "not found"):
		return fmt.Errorf("%w: %s", ErrRegionNotFound, re.Msg)
	default:
		return err
	}
}

// AllocOptions tunes Alloc.
type AllocOptions struct {
	// StripeUnit is the striping granularity (0 = master default, 1 MiB).
	StripeUnit uint64
	// StripeWidth caps how many servers the region spans (0 = all alive).
	StripeWidth int
	// Replicas is the number of extra copies kept write-through.
	Replicas int
}

// Alloc reserves a named region of distributed DRAM (the paper's ralloc).
// The region exists until Free; use Map to access it.
func (c *Client) Alloc(ctx context.Context, name string, size uint64, opts AllocOptions) (*proto.RegionInfo, error) {
	req := proto.AllocRequest{
		Name:        name,
		Size:        size,
		StripeUnit:  opts.StripeUnit,
		StripeWidth: opts.StripeWidth,
		Replicas:    opts.Replicas,
		// The idempotency token makes a retried Alloc (possibly landing on a
		// freshly promoted primary after a failover) return the region the
		// first attempt created instead of "already exists".
		Token: uint64(c.dev.Node())<<32 | c.allocSeq.Add(1),
	}
	var e rpc.Encoder
	req.Encode(&e)
	resp, err := c.call(ctx, proto.MtAlloc, e.Bytes())
	if err != nil {
		return nil, fmt.Errorf("alloc %q: %w", name, err)
	}
	d := rpc.NewDecoder(resp)
	info := proto.DecodeRegionInfo(d)
	if derr := d.Err(); derr != nil {
		return nil, fmt.Errorf("alloc %q: %w", name, derr)
	}
	return info, nil
}

// Map attaches to a named region (the paper's rmap): fetches its metadata
// and establishes one-sided connections to every server it touches. After
// Map returns, data-path operations need no further setup.
func (c *Client) Map(ctx context.Context, name string) (*Region, error) {
	var e rpc.Encoder
	e.String(name)
	resp, err := c.call(ctx, proto.MtMap, e.Bytes())
	if err != nil {
		return nil, fmt.Errorf("map %q: %w", name, err)
	}
	d := rpc.NewDecoder(resp)
	info := proto.DecodeRegionInfo(d)
	lease := decodeLease(d)
	if derr := d.Err(); derr != nil {
		return nil, fmt.Errorf("map %q: %w", name, derr)
	}
	if err := c.connectRegion(ctx, info); err != nil {
		return nil, fmt.Errorf("map %q: %w", name, err)
	}
	return newRegion(c, info, lease), nil
}

// decodeLease reads the layout-lease term (virtual nanoseconds) a map or
// remap response carries after the region metadata. Tolerant of its
// absence — an old or lease-disabled master simply grants no lease (0).
func decodeLease(d *rpc.Decoder) uint64 {
	if d.Err() == nil && d.Remaining() > 0 {
		return d.U64()
	}
	return 0
}

// connectRegion eagerly connects to every server a region touches so the
// data path is setup-free, per the separation philosophy. One liveness
// snapshot from the master covers all of them: a dead server upgrades the
// failure to ErrRegionLost without a futile dial, and a bumped epoch means
// the server restarted — its old arena (and the peer of any cached QP) is
// gone, so the cached connection is replaced even though it still looks
// healthy locally.
//
// Replicated regions connect degraded: as long as at least one complete
// copy is reachable, mapping succeeds and the data path serves off the
// surviving copies while the repair plane rebuilds the rest. Only when
// every copy touches an unreachable server does the failure surface —
// as ErrRegionLost if one of those servers is declared dead.
func (c *Client) connectRegion(ctx context.Context, info *proto.RegionInfo) error {
	nodes := info.Servers()
	for _, rep := range info.Replicas {
		for _, x := range rep {
			nodes = append(nodes, x.Server)
		}
	}
	alive := make(map[simnet.NodeID]proto.ServerInfo)
	if infos, err := c.ClusterInfo(ctx); err == nil {
		for _, si := range infos {
			alive[si.Node] = si
		}
	}
	failed := make(map[simnet.NodeID]error)
	deadFailed := make(map[simnet.NodeID]bool)
	seen := make(map[simnet.NodeID]bool, len(nodes))
	for _, node := range nodes {
		if seen[node] {
			continue
		}
		seen[node] = true
		si, known := alive[node]
		if known {
			c.refreshConn(node, si.Epoch)
			if !si.Alive {
				// The verdict can be stale in both directions (a starved
				// heartbeat marks a healthy server dead for a beat or two),
				// so it is advisory: drop the cached connection and probe
				// with a fresh dial. Only a server that is declared dead AND
				// unreachable makes the region lost.
				c.dropConn(node)
			}
		}
		if _, err := c.serverConn(ctx, node); err != nil {
			failed[node] = err
			if known && !si.Alive {
				deadFailed[node] = true
			}
		}
	}
	if len(failed) == 0 {
		return nil
	}
	// Degraded tolerance: any copy with no failed server keeps the region
	// usable.
	for _, copySet := range info.Copies() {
		ok := true
		for _, x := range copySet {
			if _, bad := failed[x.Server]; bad {
				ok = false
				break
			}
		}
		if ok && len(copySet) > 0 {
			return nil
		}
	}
	for node, err := range failed {
		if deadFailed[node] || c.serverDead(ctx, node) {
			return fmt.Errorf("%w: server %v: %v", ErrRegionLost, node, err)
		}
	}
	for node, err := range failed {
		return fmt.Errorf("connect %v: %w", node, err)
	}
	return nil
}

// dropConn closes and forgets the cached connection to node so the next
// serverConn call dials fresh.
func (c *Client) dropConn(node simnet.NodeID) {
	c.mu.Lock()
	sc := c.conns[node]
	delete(c.conns, node)
	c.mu.Unlock()
	if sc != nil {
		sc.close()
	}
}

// refreshConn records the server's current epoch and drops any cached
// connection dialed against an earlier incarnation.
func (c *Client) refreshConn(node simnet.NodeID, epoch uint64) {
	c.mu.Lock()
	c.epochs[node] = epoch
	sc, ok := c.conns[node]
	if ok && sc.epoch != epoch {
		delete(c.conns, node)
	} else {
		sc = nil
	}
	c.mu.Unlock()
	if sc != nil {
		sc.close()
	}
}

// serverDead asks the master whether it has declared the node dead. A
// cluster-info failure counts as "not known dead": the caller then reports
// the original connect error rather than ErrRegionLost.
func (c *Client) serverDead(ctx context.Context, node simnet.NodeID) bool {
	infos, err := c.ClusterInfo(ctx)
	if err != nil {
		return false
	}
	for _, si := range infos {
		if si.Node == node {
			return !si.Alive
		}
	}
	return false
}

// AllocMap allocates and immediately maps a region.
func (c *Client) AllocMap(ctx context.Context, name string, size uint64, opts AllocOptions) (*Region, error) {
	if _, err := c.Alloc(ctx, name, size, opts); err != nil {
		return nil, err
	}
	return c.Map(ctx, name)
}

// Free releases a region's memory at the master (the paper's rfree). All
// mappings must have been unmapped first.
func (c *Client) Free(ctx context.Context, name string) error {
	var e rpc.Encoder
	e.String(name)
	if _, err := c.call(ctx, proto.MtFree, e.Bytes()); err != nil {
		return fmt.Errorf("free %q: %w", name, err)
	}
	return nil
}

// RegionSummary is one row of the master's region listing.
type RegionSummary struct {
	Name     string
	ID       proto.RegionID
	Size     uint64
	MapCount int
}

// ListRegions returns the master's region table.
func (c *Client) ListRegions(ctx context.Context) ([]RegionSummary, error) {
	resp, err := c.call(ctx, proto.MtListRegions, nil)
	if err != nil {
		return nil, fmt.Errorf("list regions: %w", err)
	}
	d := rpc.NewDecoder(resp)
	n := d.U32()
	out := make([]RegionSummary, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, RegionSummary{
			Name:     d.String(),
			ID:       proto.RegionID(d.U64()),
			Size:     d.U64(),
			MapCount: int(d.U32()),
		})
	}
	if derr := d.Err(); derr != nil {
		return nil, fmt.Errorf("list regions: %w", derr)
	}
	return out, nil
}

// ClusterInfo reports the master's view of the memory servers.
func (c *Client) ClusterInfo(ctx context.Context) ([]proto.ServerInfo, error) {
	resp, err := c.call(ctx, proto.MtClusterInfo, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster info: %w", err)
	}
	d := rpc.NewDecoder(resp)
	n := d.U32()
	out := make([]proto.ServerInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, proto.DecodeServerInfo(d))
	}
	if derr := d.Err(); derr != nil {
		return nil, fmt.Errorf("cluster info: %w", derr)
	}
	return out, nil
}

// ClusterStats fetches the master's aggregated telemetry: the master's own
// snapshot plus the latest snapshot each memory server piggybacked on its
// heartbeat. Freshly booted servers may not appear until their first beat.
func (c *Client) ClusterStats(ctx context.Context) ([]proto.NodeStats, error) {
	resp, err := c.call(ctx, proto.MtStats, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster stats: %w", err)
	}
	d := rpc.NewDecoder(resp)
	n := d.U32()
	out := make([]proto.NodeStats, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		ns, err := proto.DecodeNodeStats(d)
		if err != nil {
			return nil, fmt.Errorf("cluster stats: %w", err)
		}
		out = append(out, ns)
	}
	if derr := d.Err(); derr != nil {
		return nil, fmt.Errorf("cluster stats: %w", derr)
	}
	return out, nil
}

// ClusterHealth fetches the primary master's health-engine state: the
// current alert table (firing first), the bounded health-event ring, and
// the cluster-merged windowed telemetry backing the verdicts.
func (c *Client) ClusterHealth(ctx context.Context) (proto.HealthReport, error) {
	resp, err := c.call(ctx, proto.MtHealth, nil)
	if err != nil {
		return proto.HealthReport{}, fmt.Errorf("cluster health: %w", err)
	}
	report, err := proto.DecodeHealthReport(rpc.NewDecoder(resp))
	if err != nil {
		return proto.HealthReport{}, fmt.Errorf("cluster health: %w", err)
	}
	return report, nil
}

// MasterStatus is one master replica's self-reported replication role, as
// probed by MasterStatuses. Err is set when the replica was unreachable.
type MasterStatus struct {
	Node    simnet.NodeID
	Role    string
	Epoch   uint64
	Primary simnet.NodeID
	Err     error
}

// MasterStatuses probes every configured master replica for its
// replication role. Unlike the primary-fenced control RPCs, the status
// probe answers from any role, so standbys (and a fenced stale primary)
// report too; an unreachable replica gets a non-nil Err in its row
// instead of failing the whole probe.
func (c *Client) MasterStatuses(ctx context.Context) []MasterStatus {
	out := make([]MasterStatus, 0, len(c.cfg.masters()))
	for _, node := range c.cfg.masters() {
		st := MasterStatus{Node: node, Role: "unreachable", Primary: -1}
		conn, err := rpc.Dial(ctx, c.dev, node, proto.MasterService, c.pd, c.cfg.RPC)
		if err != nil {
			st.Err = fmt.Errorf("%w: %v", ErrMasterUnavailable, err)
			out = append(out, st)
			continue
		}
		resp, lat, err := conn.Call(ctx, proto.MtMasterStatus, nil)
		c.chargeRPC(lat)
		conn.Close()
		if err != nil {
			st.Err = fmt.Errorf("%w: %v", ErrMasterUnavailable, err)
			out = append(out, st)
			continue
		}
		d := rpc.NewDecoder(resp)
		ms := proto.DecodeMasterStatus(d)
		if derr := d.Err(); derr != nil {
			st.Err = derr
		} else {
			st.Role, st.Epoch, st.Primary = ms.Role, ms.Epoch, ms.Primary
		}
		out = append(out, st)
	}
	return out
}

// RegionStatuses fetches the master's repair-plane view of every region:
// full metadata plus per-copy health, dirty, under-repair, and placement
// flags. This is the introspection surface `rstore-cli regions` renders.
func (c *Client) RegionStatuses(ctx context.Context) ([]proto.RegionStatus, error) {
	resp, err := c.call(ctx, proto.MtRegionStatus, nil)
	if err != nil {
		return nil, fmt.Errorf("region status: %w", err)
	}
	d := rpc.NewDecoder(resp)
	n := d.U32()
	out := make([]proto.RegionStatus, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		out = append(out, proto.DecodeRegionStatus(d))
	}
	if derr := d.Err(); derr != nil {
		return nil, fmt.Errorf("region status: %w", derr)
	}
	return out, nil
}

// FetchTrace pulls every buffered span for a trace: the master fans the
// request out to its own ring and every alive memory server
// (MtTraceFetch), and the client merges in its local ring — client-only
// nodes are not reachable from the master, and the local merge makes
// their spans part of the picture regardless. The bool result is false
// when any ring had evicted part of the trace or a node was unreachable.
// Feed the spans to telemetry.Assemble to build the causal tree.
func (c *Client) FetchTrace(ctx context.Context, id telemetry.TraceID) ([]telemetry.Span, bool, error) {
	var e rpc.Encoder
	(&proto.TraceFetchRequest{Trace: id}).Encode(&e)
	resp, err := c.call(ctx, proto.MtTraceFetch, e.Bytes())
	if err != nil {
		return nil, false, fmt.Errorf("trace fetch: %w", err)
	}
	r, err := proto.DecodeTraceFetchResponse(rpc.NewDecoder(resp))
	if err != nil {
		return nil, false, fmt.Errorf("trace fetch: %w", err)
	}
	local, localComplete := c.tracer.SpansFor(id)
	return append(r.Spans, local...), r.Complete && localComplete, nil
}

// reportDegraded tells the master copy copyIdx of the region missed a
// write, returning the region's current generation from the response.
func (c *Client) reportDegraded(ctx context.Context, name string, copyIdx int) (uint64, error) {
	rep := proto.DegradedReport{Name: name, Copy: copyIdx}
	var e rpc.Encoder
	rep.Encode(&e)
	resp, err := c.call(ctx, proto.MtReportDegraded, e.Bytes())
	if err != nil {
		return 0, err
	}
	d := rpc.NewDecoder(resp)
	gen := d.U64()
	if derr := d.Err(); derr != nil {
		return 0, derr
	}
	return gen, nil
}

// serverConn returns (establishing if needed) the one-sided connection to
// a memory server. Connections are shared across all regions — the QP
// amortization the paper's control-path evaluation highlights.
func (c *Client) serverConn(ctx context.Context, node simnet.NodeID) (*serverConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if sc, ok := c.conns[node]; ok && sc.healthy() {
		c.mu.Unlock()
		return sc, nil
	}
	stale := c.conns[node]
	c.mu.Unlock()
	if stale != nil {
		stale.close()
	}

	qp, err := c.dev.Dial(ctx, node, proto.MemDataService, c.pd, rdma.ConnOpts{SendDepth: c.cfg.QPDepth, RecvDepth: 16})
	if err != nil {
		return nil, err
	}
	sc := newServerConn(qp)
	c.chargeConnect()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		sc.close()
		return nil, ErrClosed
	}
	if cur, ok := c.conns[node]; ok && cur.healthy() {
		// Lost a race with another mapper; keep the established one.
		go sc.close()
		return cur, nil
	}
	sc.epoch = c.epochs[node]
	c.conns[node] = sc
	return sc, nil
}
