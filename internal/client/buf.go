package client

import (
	"fmt"

	"rstore/internal/rdma"
)

// Buf is a client-local, NIC-registered buffer: the zero-copy source and
// destination of one-sided operations. Registering is a control-path cost
// (charged to ControlStats); applications allocate buffers once and reuse
// them, exactly as the paper's applications do.
type Buf struct {
	mr *rdma.MemoryRegion
}

// AllocBuf registers n bytes of local memory for zero-copy IO.
func (c *Client) AllocBuf(n int) (*Buf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("client: alloc buf: non-positive size %d", n)
	}
	mr, err := c.pd.RegisterMemory(make([]byte, n), rdma.AccessLocalWrite)
	if err != nil {
		return nil, fmt.Errorf("client: alloc buf: %w", err)
	}
	c.chargeRegister(n)
	return &Buf{mr: mr}, nil
}

// RegisterBuf registers caller-owned memory for zero-copy IO. The caller
// must keep buf alive and unshrunk until Release.
func (c *Client) RegisterBuf(buf []byte) (*Buf, error) {
	mr, err := c.pd.RegisterMemory(buf, rdma.AccessLocalWrite)
	if err != nil {
		return nil, fmt.Errorf("client: register buf: %w", err)
	}
	c.chargeRegister(len(buf))
	return &Buf{mr: mr}, nil
}

// Bytes returns the registered memory for direct access.
func (b *Buf) Bytes() []byte { return b.mr.Bytes() }

// Len returns the buffer size.
func (b *Buf) Len() int { return b.mr.Len() }

// Release deregisters the buffer.
func (b *Buf) Release() { b.mr.Deregister() }

// acquireStaging borrows a staging chunk, blocking until one frees up.
func (c *Client) acquireStaging() *Buf {
	return <-c.staging
}

func (c *Client) releaseStaging(b *Buf) {
	select {
	case c.staging <- b:
	default:
	}
}

// acquireAtomicStaging returns a staging buffer for an atomic's result
// word, preferring the shared pool but never blocking on it. Atomics fan
// out: one caller may hold several pending atomics at once (the
// transaction layer posts a lock CAS per write-set cell before waiting
// any), so concurrent callers each holding part of a fixed pool while
// waiting for the rest would deadlock. The fallback registers a
// transient word; release it with releaseAtomicStaging(pooled=false).
func (c *Client) acquireAtomicStaging() (b *Buf, pooled bool, err error) {
	select {
	case b := <-c.staging:
		return b, true, nil
	default:
	}
	mr, err := c.pd.RegisterMemory(make([]byte, 8), rdma.AccessLocalWrite)
	if err != nil {
		return nil, false, fmt.Errorf("client: atomic staging: %w", err)
	}
	c.chargeRegister(8)
	return &Buf{mr: mr}, false, nil
}

func (c *Client) releaseAtomicStaging(b *Buf, pooled bool) {
	if pooled {
		c.releaseStaging(b)
		return
	}
	b.Release()
}
