package client

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rstore/internal/memserver"
	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/simnet"
)

// Notification is a producer/consumer signal delivered through a region's
// home memory server.
type Notification struct {
	Region proto.RegionID
	Token  uint32
	// ArriveV is the modeled virtual time the notification reached this
	// client (on the fabric-wide timeline), used by the latency harness.
	ArriveV simnet.VTime
}

const notifySlots = 64

// notifyConn is the client's notification channel to one memory server.
type notifyConn struct {
	c      *Client
	qp     *rdma.QP
	sendMR *rdma.MemoryRegion
	recvMR *rdma.MemoryRegion

	mu      sync.Mutex
	sendIdx int
	subs    map[proto.RegionID][]chan Notification
	acks    map[proto.RegionID][]chan struct{}

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// notifyConn returns (establishing if needed) the notification connection
// to a node.
func (c *Client) notifyConn(ctx context.Context, node simnet.NodeID) (*notifyConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if nc, ok := c.notify[node]; ok {
		c.mu.Unlock()
		return nc, nil
	}
	c.mu.Unlock()

	qp, err := c.dev.Dial(ctx, node, proto.MemNotifyService, c.pd, rdma.ConnOpts{SendDepth: notifySlots * 2, RecvDepth: notifySlots * 2})
	if err != nil {
		return nil, fmt.Errorf("notify dial %v: %w", node, err)
	}
	sendMR, err := c.pd.RegisterMemory(make([]byte, notifySlots*memserver.NotifyMsgSize), 0)
	if err != nil {
		qp.Close()
		return nil, fmt.Errorf("notify buffers: %w", err)
	}
	recvMR, err := c.pd.RegisterMemory(make([]byte, notifySlots*memserver.NotifyMsgSize), rdma.AccessLocalWrite)
	if err != nil {
		qp.Close()
		return nil, fmt.Errorf("notify buffers: %w", err)
	}
	loopCtx, cancel := context.WithCancel(context.Background())
	nc := &notifyConn{
		c:      c,
		qp:     qp,
		sendMR: sendMR,
		recvMR: recvMR,
		subs:   make(map[proto.RegionID][]chan Notification),
		acks:   make(map[proto.RegionID][]chan struct{}),
		cancel: cancel,
	}
	for i := 0; i < notifySlots; i++ {
		if err := qp.PostRecv(rdma.RecvWR{
			WRID:  uint64(i),
			Local: rdma.SGE{MR: recvMR, Offset: uint64(i * memserver.NotifyMsgSize), Len: memserver.NotifyMsgSize},
		}); err != nil {
			cancel()
			qp.Close()
			return nil, fmt.Errorf("notify recvs: %w", err)
		}
	}
	c.chargeConnect()
	nc.wg.Add(1)
	go nc.recvLoop(loopCtx)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		go nc.close()
		return nil, ErrClosed
	}
	if cur, ok := c.notify[node]; ok {
		go nc.close()
		return cur, nil
	}
	c.notify[node] = nc
	return nc, nil
}

func (nc *notifyConn) close() {
	nc.cancel()
	nc.qp.Close()
	nc.wg.Wait()
	nc.mu.Lock()
	defer nc.mu.Unlock()
	for id, chans := range nc.subs {
		for _, ch := range chans {
			close(ch)
		}
		delete(nc.subs, id)
	}
}

func (nc *notifyConn) recvLoop(ctx context.Context) {
	defer nc.wg.Done()
	for {
		wc, err := nc.qp.RecvCQ().Next(ctx)
		if err != nil {
			return
		}
		if wc.Status != rdma.StatusSuccess {
			return
		}
		off := int(wc.WRID) * memserver.NotifyMsgSize
		kind, region, token, derr := memserver.DecodeNotifyMsg(nc.recvMR.Bytes()[off : off+memserver.NotifyMsgSize])
		if rerr := nc.qp.PostRecv(rdma.RecvWR{
			WRID:  wc.WRID,
			Local: rdma.SGE{MR: nc.recvMR, Offset: uint64(off), Len: memserver.NotifyMsgSize},
		}); rerr != nil {
			return
		}
		if derr != nil {
			continue
		}
		switch kind {
		case memserver.NotifyKindSubscribe: // subscription ack
			nc.mu.Lock()
			if pending := nc.acks[region]; len(pending) > 0 {
				close(pending[0])
				nc.acks[region] = pending[1:]
			}
			nc.mu.Unlock()
		case memserver.NotifyKindInvalidate:
			// Repair-plane push: the region's layout changed. Mark every
			// mapped handle stale so its next operation remaps.
			nc.c.invalidateRegion(region)
		case memserver.NotifyKindNotify:
			nc.mu.Lock()
			chans := append([]chan Notification(nil), nc.subs[region]...)
			nc.mu.Unlock()
			for _, ch := range chans {
				select {
				case ch <- Notification{Region: region, Token: token, ArriveV: wc.DoneV}:
				default:
					// Slow consumer: drop rather than stall delivery.
				}
			}
		}
	}
}

// send posts one frame, draining prior send completions to recycle slots.
func (nc *notifyConn) send(kind uint8, region proto.RegionID, token uint32) error {
	nc.mu.Lock()
	slot := nc.sendIdx % notifySlots
	nc.sendIdx++
	nc.qp.SendCQ().Poll(notifySlots)
	off := slot * memserver.NotifyMsgSize
	memserver.EncodeNotifyMsg(nc.sendMR.Bytes()[off:off+memserver.NotifyMsgSize], kind, region, token)
	err := nc.qp.PostSend(rdma.SendWR{
		WRID:  uint64(slot),
		Op:    rdma.OpSend,
		Local: rdma.SGE{MR: nc.sendMR, Offset: uint64(off), Len: memserver.NotifyMsgSize},
	})
	nc.mu.Unlock()
	return err
}

// Subscribe registers for notifications on the region and returns the
// delivery channel plus an unsubscribe function. Delivery is best-effort:
// a consumer that does not drain its channel loses notifications rather
// than blocking the store.
func (r *Region) Subscribe(ctx context.Context) (<-chan Notification, func(), error) {
	if err := r.checkMapped(); err != nil {
		return nil, nil, err
	}
	info := r.Info()
	nc, err := r.c.notifyConn(ctx, info.HomeServer())
	if err != nil {
		return nil, nil, fmt.Errorf("subscribe %q: %w", info.Name, err)
	}
	ch := make(chan Notification, notifySlots)
	ack := make(chan struct{})
	nc.mu.Lock()
	nc.subs[info.ID] = append(nc.subs[info.ID], ch)
	nc.acks[info.ID] = append(nc.acks[info.ID], ack)
	nc.mu.Unlock()

	// unregister backs out the registrations above when the handshake
	// fails, so aborted subscriptions do not leak channels or leave a
	// stale ack queue entry that would steal a later subscriber's ack.
	unregister := func() {
		nc.mu.Lock()
		defer nc.mu.Unlock()
		chans := nc.subs[info.ID]
		for i, c2 := range chans {
			if c2 == ch {
				nc.subs[info.ID] = append(chans[:i], chans[i+1:]...)
				break
			}
		}
		pending := nc.acks[info.ID]
		for i, a := range pending {
			if a == ack {
				nc.acks[info.ID] = append(pending[:i], pending[i+1:]...)
				break
			}
		}
	}

	if err := nc.send(memserver.NotifyKindSubscribe, info.ID, 0); err != nil {
		unregister()
		return nil, nil, fmt.Errorf("subscribe %q: %w", info.Name, err)
	}
	// Bound the ack wait even when the caller's context has no deadline, so
	// a dead home server cannot hang the subscriber forever.
	timeout := time.NewTimer(5 * time.Second)
	defer timeout.Stop()
	select {
	case <-ack:
	case <-ctx.Done():
		unregister()
		return nil, nil, fmt.Errorf("subscribe %q: %w", info.Name, ctx.Err())
	case <-timeout.C:
		unregister()
		return nil, nil, fmt.Errorf("subscribe %q: %w", info.Name, rdma.ErrTimeout)
	}

	unsub := func() {
		_ = nc.send(memserver.NotifyKindUnsubscribe, info.ID, 0)
		nc.mu.Lock()
		chans := nc.subs[info.ID]
		for i, c2 := range chans {
			if c2 == ch {
				nc.subs[info.ID] = append(chans[:i], chans[i+1:]...)
				break
			}
		}
		nc.mu.Unlock()
	}
	return ch, unsub, nil
}

// Notify signals every subscriber of the region with the token, typically
// after a Write completes (producer/consumer handoff).
func (r *Region) Notify(ctx context.Context, token uint32) error {
	if err := r.checkMapped(); err != nil {
		return err
	}
	info := r.Info()
	nc, err := r.c.notifyConn(ctx, info.HomeServer())
	if err != nil {
		return fmt.Errorf("notify %q: %w", info.Name, err)
	}
	if err := nc.send(memserver.NotifyKindNotify, info.ID, token); err != nil {
		return fmt.Errorf("notify %q: %w", info.Name, err)
	}
	return nil
}
