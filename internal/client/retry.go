package client

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// RetryPolicy governs control-plane retries: capped exponential backoff
// with bounded jitter. The data path never retries through this policy —
// per the paper's separation philosophy, failures there surface
// immediately as ErrIOFailed and recovery (re-dial, Remap) is a
// control-plane action.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Default 5; values below 1 are treated as 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Default 2ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Default 250ms.
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor. Default 2.
	Multiplier float64
	// Jitter is the fraction of the backoff randomized symmetrically around
	// it, in [0,1]: a delay d becomes uniform in [d(1-Jitter), d(1+Jitter)].
	// Default 0.2.
	Jitter float64
	// Seed makes the jitter sequence reproducible. Zero seeds from the
	// policy's defaults deterministically (chaos tests rely on this).
	Seed int64
}

// DefaultRetryPolicy returns the client's default control-plane policy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Backoff returns the deterministic (jitter-free) delay before retry
// attempt. Attempt 0 is the first retry. The sequence is monotone
// non-decreasing and capped at MaxDelay.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(p.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return time.Duration(d)
}

// retrier executes operations under a policy with a seeded jitter stream.
type retrier struct {
	policy RetryPolicy
	// onRetry, when set, is invoked once per retry attempt (after the
	// backoff sleep, before the attempt itself) — the telemetry hook.
	onRetry func()

	mu  sync.Mutex
	rng *rand.Rand
}

func newRetrier(p RetryPolicy) *retrier {
	p = p.withDefaults()
	return &retrier{policy: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// jittered returns Backoff(attempt) spread by the policy's jitter.
func (r *retrier) jittered(attempt int) time.Duration {
	d := r.policy.Backoff(attempt)
	if r.policy.Jitter == 0 || d == 0 {
		return d
	}
	r.mu.Lock()
	u := r.rng.Float64()
	r.mu.Unlock()
	// u in [0,1) → factor in [1-Jitter, 1+Jitter).
	factor := 1 + r.policy.Jitter*(2*u-1)
	return time.Duration(float64(d) * factor)
}

// permanentError marks an error that must not be retried even though its
// cause might otherwise look transient.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// permanent wraps err so the retrier stops immediately and surfaces it.
func permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// retryable reports whether a control-plane error class is worth another
// attempt: connection loss, fabric unreachability, transient drops, and
// per-attempt timeouts all are; remote business errors (already executed
// at the master) and typed client sentinels are not.
func retryable(err error) bool {
	var pe *permanentError
	if errors.As(err, &pe) {
		return false
	}
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		return false
	}
	switch {
	case errors.Is(err, rpc.ErrConnClosed),
		errors.Is(err, simnet.ErrNodeDown),
		errors.Is(err, simnet.ErrPartitioned),
		errors.Is(err, simnet.ErrDropped),
		errors.Is(err, rdma.ErrQPState),
		errors.Is(err, rdma.ErrTimeout),
		errors.Is(err, context.DeadlineExceeded),
		// A not-primary redirect retries against the re-homed replica; an
		// all-replicas-unreachable dial round is worth retrying too — the
		// group may be mid-failover.
		errors.Is(err, errNotPrimary),
		errors.Is(err, ErrMasterUnavailable):
		return true
	default:
		return false
	}
}

// do runs op with retries. Each attempt receives the caller's context; the
// per-attempt deadline is applied by the RPC layer. Between attempts the
// retrier sleeps the jittered backoff, giving up early when the caller's
// context expires — total attempts always respect the context deadline.
func (r *retrier) do(ctx context.Context, op func(ctx context.Context) error) error {
	var err error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(r.jittered(attempt - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			if r.onRetry != nil {
				r.onRetry()
			}
		}
		err = op(ctx)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		if !retryable(err) {
			return err
		}
		if ctx.Err() != nil {
			// The caller's deadline expired during the attempt: stop, do not
			// burn further attempts against a dead clock.
			return err
		}
	}
	return err
}
