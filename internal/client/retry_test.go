package client

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// boundedPolicy maps arbitrary quick-generated integers onto a valid-ish
// policy so properties exercise the normalization paths too.
func boundedPolicy(attempts, base, max int64, mult, jit float64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: int(attempts % 32),
		BaseDelay:   time.Duration(base % int64(50*time.Millisecond)),
		MaxDelay:    time.Duration(max % int64(2*time.Second)),
		Multiplier:  mult,
		Jitter:      jit,
	}
}

// Property: the backoff sequence is monotone non-decreasing and never
// exceeds the (normalized) cap, for arbitrary policies.
func TestBackoffMonotoneCappedProperty(t *testing.T) {
	fn := func(attempts, base, max int64, mult, jit float64) bool {
		p := boundedPolicy(attempts, base, max, mult, jit).withDefaults()
		prev := time.Duration(-1)
		for a := 0; a < 20; a++ {
			d := p.Backoff(a)
			if d < prev || d > p.MaxDelay || d < 0 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBackoffDefaults(t *testing.T) {
	p := DefaultRetryPolicy()
	tests := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 2 * time.Millisecond},
		{1, 4 * time.Millisecond},
		{2, 8 * time.Millisecond},
		{6, 128 * time.Millisecond},
		{7, 250 * time.Millisecond}, // capped
		{100, 250 * time.Millisecond},
		{-3, 2 * time.Millisecond}, // clamped to first retry
	}
	for _, tt := range tests {
		if got := p.Backoff(tt.attempt); got != tt.want {
			t.Errorf("Backoff(%d) = %v, want %v", tt.attempt, got, tt.want)
		}
	}
}

// Property: jittered delays stay within [d(1-J), d(1+J)] of the base
// backoff for arbitrary seeds and attempts.
func TestJitterBoundsProperty(t *testing.T) {
	fn := func(seed int64, attempt uint8, jit float64) bool {
		p := DefaultRetryPolicy()
		p.Jitter = jit
		p.Seed = seed
		p = p.withDefaults()
		r := newRetrier(p)
		a := int(attempt % 16)
		d := p.Backoff(a)
		got := r.jittered(a)
		lo := time.Duration(float64(d) * (1 - p.Jitter))
		hi := time.Duration(float64(d) * (1 + p.Jitter))
		return got >= lo && got <= hi
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestJitterSeedDeterminism(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		r := newRetrier(RetryPolicy{Seed: seed})
		var out []time.Duration
		for a := 0; a < 16; a++ {
			out = append(out, r.jittered(a))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter diverged at attempt %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: do() never runs more than MaxAttempts attempts, and a context
// that expires mid-backoff stops the loop early with the context error.
func TestDoAttemptsRespectDeadlineProperty(t *testing.T) {
	fn := func(attempts uint8) bool {
		max := int(attempts%8) + 1
		r := newRetrier(RetryPolicy{
			MaxAttempts: max,
			BaseDelay:   time.Microsecond,
			MaxDelay:    10 * time.Microsecond,
		})
		calls := 0
		err := r.do(context.Background(), func(context.Context) error {
			calls++
			return rpc.ErrConnClosed // always retryable
		})
		return calls == max && errors.Is(err, rpc.ErrConnClosed)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDoStopsWhenContextExpires(t *testing.T) {
	r := newRetrier(RetryPolicy{
		MaxAttempts: 100,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	calls := 0
	start := time.Now()
	err := r.do(ctx, func(context.Context) error {
		calls++
		return simnet.ErrNodeDown
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (deadline shorter than first backoff)", calls)
	}
	if err == nil {
		t.Error("do returned nil under an expired context")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("do took %v; deadline was not respected", elapsed)
	}
}

func TestDoReturnsFirstPermanentError(t *testing.T) {
	r := newRetrier(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond})
	calls := 0
	boom := errors.New("boom")
	err := r.do(context.Background(), func(context.Context) error {
		calls++
		return permanent(boom)
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestRetryableClassification(t *testing.T) {
	tests := []struct {
		err  error
		want bool
	}{
		{rpc.ErrConnClosed, true},
		{simnet.ErrNodeDown, true},
		{simnet.ErrPartitioned, true},
		{simnet.ErrDropped, true},
		{rdma.ErrQPState, true},
		{rdma.ErrTimeout, true},
		{context.DeadlineExceeded, true},
		{&rpc.RemoteError{MsgType: 3, Msg: "master: region already exists"}, false},
		{ErrRegionLost, false},
		{ErrClosed, false},
		{permanent(simnet.ErrNodeDown), false},
		{errors.New("anything else"), false},
		{nil, false},
	}
	for _, tt := range tests {
		if got := retryable(tt.err); got != tt.want {
			t.Errorf("retryable(%v) = %v, want %v", tt.err, got, tt.want)
		}
	}
}
