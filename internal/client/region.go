package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/telemetry"
)

// Region is a mapped region: the client-side handle of a named, striped
// window of cluster DRAM. All methods are safe for concurrent use.
type Region struct {
	c *Client
	// info holds the current metadata snapshot; Remap swaps in a fresh one
	// atomically so in-flight operations keep a consistent view.
	info atomic.Pointer[proto.RegionInfo]
	// stale is set by a repair-plane invalidation push (the layout
	// changed); the next data-path operation remaps before issuing.
	stale atomic.Bool

	// leaseTermNs is the layout lease the master granted at Map/Remap time,
	// in virtual nanoseconds (0 = no lease discipline, serve forever), and
	// leaseExpiry the virtual time it lapses. An expired lease triggers a
	// renewal remap; while the master group is unavailable the region keeps
	// serving one-sided I/O off the cached layout under a short renewal
	// cooldown — the paper's separation philosophy applied to failover.
	leaseTermNs atomic.Int64
	leaseExpiry atomic.Int64

	mu       sync.Mutex
	unmapped bool
}

func newRegion(c *Client, info *proto.RegionInfo, leaseNs uint64) *Region {
	r := &Region{c: c}
	r.info.Store(info)
	r.armLease(leaseNs)
	c.registerRegion(r)
	return r
}

// armLease installs a freshly granted lease term and re-arms its expiry
// from the client's virtual clock.
func (r *Region) armLease(leaseNs uint64) {
	r.leaseTermNs.Store(int64(leaseNs))
	if leaseNs > 0 {
		r.leaseExpiry.Store(int64(r.c.VNow()) + int64(leaseNs))
	}
}

// refreshIfStale remaps before issuing when an invalidation push marked
// the snapshot stale. Best effort: if the remap fails the operation
// proceeds on the old snapshot (a surviving copy may still serve it) and
// the stale mark is restored for the next attempt. With no stale mark an
// expired layout lease also triggers a renewal.
func (r *Region) refreshIfStale(ctx context.Context) {
	if r.stale.CompareAndSwap(true, false) {
		if err := r.Remap(ctx); err != nil {
			r.stale.Store(true)
		}
		return
	}
	r.refreshLease(ctx)
}

// refreshLease renews the layout lease when it has expired. Exactly one
// in-flight operation claims the renewal (a CAS pushes the expiry out by
// a quarter term as a cooldown) so concurrent data-path ops never
// stampede the master; if the renewal fails — the usual case being
// ErrMasterUnavailable mid-failover — the region keeps serving off the
// cached layout and the cooldown retries renewal shortly. Stale layouts
// are still caught by the one-sided path itself: a failed access against
// a replaced layout remaps via remapFreshGeneration.
func (r *Region) refreshLease(ctx context.Context) {
	term := r.leaseTermNs.Load()
	if term <= 0 {
		return
	}
	now := int64(r.c.VNow())
	exp := r.leaseExpiry.Load()
	if now < exp {
		return
	}
	if !r.leaseExpiry.CompareAndSwap(exp, now+term/4) {
		return
	}
	_ = r.Remap(ctx) // success re-arms the full term
}

// Info returns the region's current metadata snapshot.
func (r *Region) Info() *proto.RegionInfo { return r.info.Load() }

// Name returns the region's name.
func (r *Region) Name() string { return r.Info().Name }

// Size returns the region's size in bytes.
func (r *Region) Size() uint64 { return r.Info().Size }

// Generation returns the region's layout generation as currently mapped.
// The repair plane bumps it whenever extents move; layers that cache
// region contents client-side key their invalidation off it.
func (r *Region) Generation() uint64 { return r.Info().Generation }

// Remap refetches the region's metadata from the master and re-establishes
// server connections (the recovery step after a memory-server bounce). It
// is idempotent — the master does not count it as an additional mapping —
// so callers retry it freely. Data written before the failure is NOT
// recovered unless the region has replicas; Remap restores access, not
// contents. Returns ErrRegionLost when a participating server is
// unreachable and the master has declared it dead.
func (r *Region) Remap(ctx context.Context) error {
	if err := r.checkMapped(); err != nil {
		return err
	}
	r.c.ctr.remaps.Inc()
	name := r.Info().Name
	var e rpc.Encoder
	e.String(name)
	resp, err := r.c.call(ctx, proto.MtRemap, e.Bytes())
	if err != nil {
		return fmt.Errorf("remap %q: %w", name, err)
	}
	d := rpc.NewDecoder(resp)
	info := proto.DecodeRegionInfo(d)
	lease := decodeLease(d)
	if derr := d.Err(); derr != nil {
		return fmt.Errorf("remap %q: %w", name, derr)
	}
	if err := r.c.connectRegion(ctx, info); err != nil {
		return fmt.Errorf("remap %q: %w", name, err)
	}
	r.info.Store(info)
	r.armLease(lease)
	return nil
}

// Unmap detaches from the region (the paper's runmap). Data-path calls
// fail afterwards; the region itself lives on until Free.
func (r *Region) Unmap(ctx context.Context) error {
	r.mu.Lock()
	if r.unmapped {
		r.mu.Unlock()
		return nil
	}
	r.unmapped = true
	r.mu.Unlock()
	r.c.unregisterRegion(r)
	name := r.Info().Name
	var e rpc.Encoder
	e.String(name)
	if _, err := r.c.call(ctx, proto.MtUnmap, e.Bytes()); err != nil {
		return fmt.Errorf("unmap %q: %w", name, err)
	}
	return nil
}

func (r *Region) checkMapped() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.unmapped {
		return fmt.Errorf("%w: %q", ErrRegionClosed, r.Info().Name)
	}
	return nil
}

// pendingCopy is one copy's share of an in-flight operation. copyIdx uses
// the master's numbering: 0 is the primary, i>0 is replica i-1.
type pendingCopy struct {
	op      *ioOp
	frags   int
	copyIdx int
}

// Pending is an in-flight asynchronous operation. A replicated write
// carries one future per copy so that a dead replica fails only its own
// future instead of sinking the whole write; Wait resolves the degraded
// outcome.
type Pending struct {
	c      *Client
	r      *Region
	kind   opKind
	ot     opTrace
	copies []pendingCopy
}

// Wait blocks until the operation completes and returns its stats. Both
// synchronous wrappers funnel through here, so this is where an
// operation's outcome and latency reach the client's telemetry.
//
// For replicated writes Wait implements degraded-mode semantics: the write
// succeeds as long as at least one complete copy landed. Copies that
// missed the write are reported to the master in the background
// (MtReportDegraded) so the repair plane re-syncs them; the caller is not
// blocked on that report.
func (p *Pending) Wait(ctx context.Context) (IOStat, error) {
	if len(p.copies) == 1 {
		pc := p.copies[0]
		st, err := pc.op.wait(ctx, pc.frags)
		if p.c != nil {
			p.c.recordOp(p.kind, p.ot, st, err, pc.op.takeSpans())
		}
		return st, err
	}
	var (
		merged   IOStat
		firstErr error
		ok       int
		failed   []int
		spans    []telemetry.Span
	)
	for _, pc := range p.copies {
		st, err := pc.op.wait(ctx, pc.frags)
		// Fragment spans from failed copies are kept: a degraded write's
		// trace should show which copy's io missed.
		spans = append(spans, pc.op.takeSpans()...)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			failed = append(failed, pc.copyIdx)
			continue
		}
		merged.Fragments += st.Fragments
		if ok == 0 || st.PostedV < merged.PostedV {
			merged.PostedV = st.PostedV
		}
		if st.DoneV > merged.DoneV {
			merged.DoneV = st.DoneV
		}
		ok++
	}
	if ok == 0 {
		p.c.recordOp(p.kind, p.ot, IOStat{}, firstErr, spans)
		return IOStat{}, firstErr
	}
	if len(failed) > 0 {
		p.c.ctr.degradedWrites.Inc()
		p.r.reportDegradedAsync(failed)
	}
	p.c.recordOp(p.kind, p.ot, merged, nil, spans)
	return merged, nil
}

// reportDegradedAsync tells the master which copies missed a write so the
// repair plane marks them dirty and re-syncs them. Runs in the background:
// degraded writes must not pay a master round-trip on the data path. A
// response generation ahead of the local snapshot marks the handle stale
// so the next operation picks up the repaired layout.
func (r *Region) reportDegradedAsync(copies []int) {
	info := r.Info()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, ci := range copies {
			gen, err := r.c.reportDegraded(ctx, info.Name, ci)
			if err != nil {
				return
			}
			if gen > info.Generation {
				r.stale.Store(true)
			}
		}
	}()
}

// issue posts one one-sided op per fragment against the shared futures.
// Every fragment is timestamped with the operation's start (the client's
// virtual clock), so per-QP cursors cannot leak earlier times into the
// operation's latency.
func (r *Region) issue(ctx context.Context, opcode rdma.OpCode, frags []proto.Fragment, buf *Buf, bufOff int, op *ioOp) {
	for i, f := range frags {
		sc, err := r.c.serverConn(ctx, f.Server)
		if err != nil {
			op.fail(fmt.Errorf("%w: %v", ErrIOFailed, err), len(frags)-i)
			return
		}
		wr := rdma.SendWR{
			Op:         opcode,
			Local:      rdma.SGE{MR: buf.mr, Offset: uint64(bufOff + f.BufOff), Len: f.Len},
			RemoteKey:  f.RKey,
			RemoteAddr: f.Addr,
			StartV:     op.startV,
		}
		if err := sc.post(wr, op); err != nil {
			op.fail(fmt.Errorf("%w: %v", ErrIOFailed, err), len(frags)-i)
			return
		}
	}
}

// newOp creates a future stamped at the client's current virtual time.
func (r *Region) newOp(fragments int) *ioOp {
	return newIOOp(fragments, r.c.VNow(), r.c.advanceVNow)
}

// StartWriteAt begins an asynchronous write of buf[bufOff:bufOff+n] into
// the region at off. With replicas configured, the write goes to every
// copy (write-through), each copy on its own future so a dead replica
// degrades the write instead of failing it (see Pending.Wait).
func (r *Region) StartWriteAt(ctx context.Context, off uint64, buf *Buf, bufOff, n int) (*Pending, error) {
	if err := r.checkMapped(); err != nil {
		return nil, err
	}
	r.refreshIfStale(ctx)
	info := r.Info()
	frags, err := info.Fragments(off, n)
	if err != nil {
		return nil, fmt.Errorf("write %q: %w", info.Name, err)
	}
	// Resolve every copy's fragments before issuing anything so a bad
	// range cannot leave a partial write in flight.
	repFrags := make([][]proto.Fragment, len(info.Replicas))
	for i := range info.Replicas {
		rf, err := info.ReplicaFragments(i, off, n)
		if err != nil {
			return nil, fmt.Errorf("write %q replica %d: %w", info.Name, i, err)
		}
		repFrags[i] = rf
	}
	ot := r.c.startOp(ctx)
	p := &Pending{c: r.c, r: r, kind: opWrite, ot: ot}
	op := r.newOp(len(frags))
	op.setTrace(ot.id, ot.span, "io.write", r.c.tracer.NewSpan)
	r.issue(ctx, rdma.OpWrite, frags, buf, bufOff, op)
	p.copies = append(p.copies, pendingCopy{op: op, frags: len(frags), copyIdx: 0})
	for i, rf := range repFrags {
		rop := r.newOp(len(rf))
		rop.setTrace(ot.id, ot.span, "io.write", r.c.tracer.NewSpan)
		r.issue(ctx, rdma.OpWrite, rf, buf, bufOff, rop)
		p.copies = append(p.copies, pendingCopy{op: rop, frags: len(rf), copyIdx: i + 1})
	}
	return p, nil
}

// WriteAt writes buf[bufOff:bufOff+n] to the region at off, zero copy.
// A failure that turns out to be a repair-plane layout change (the
// region's generation advanced) is retried once against the fresh layout;
// if the retry also fails the error wraps ErrStaleGeneration.
func (r *Region) WriteAt(ctx context.Context, off uint64, buf *Buf, bufOff, n int) (IOStat, error) {
	p, err := r.StartWriteAt(ctx, off, buf, bufOff, n)
	if err != nil {
		return IOStat{}, err
	}
	st, werr := p.Wait(ctx)
	if werr == nil || !r.remapFreshGeneration(ctx, werr) {
		return st, werr
	}
	p, err = r.StartWriteAt(ctx, off, buf, bufOff, n)
	if err != nil {
		return IOStat{}, fmt.Errorf("%w: %v (after %v)", ErrStaleGeneration, err, werr)
	}
	st, err = p.Wait(ctx)
	if err != nil {
		return st, fmt.Errorf("%w: %v (after %v)", ErrStaleGeneration, err, werr)
	}
	return st, nil
}

// StartReadAt begins an asynchronous read of [off, off+n) into
// buf[bufOff:].
func (r *Region) StartReadAt(ctx context.Context, off uint64, buf *Buf, bufOff, n int) (*Pending, error) {
	if err := r.checkMapped(); err != nil {
		return nil, err
	}
	r.refreshIfStale(ctx)
	frags, err := r.Info().Fragments(off, n)
	if err != nil {
		return nil, fmt.Errorf("read %q: %w", r.Info().Name, err)
	}
	ot := r.c.startOp(ctx)
	op := r.newOp(len(frags))
	op.setTrace(ot.id, ot.span, "io.read", r.c.tracer.NewSpan)
	r.issue(ctx, rdma.OpRead, frags, buf, bufOff, op)
	p := &Pending{c: r.c, r: r, kind: opRead, ot: ot}
	p.copies = append(p.copies, pendingCopy{op: op, frags: len(frags), copyIdx: 0})
	return p, nil
}

// ReadAt reads [off, off+n) into buf[bufOff:], zero copy. If the primary
// copy fails and the region has replicas, the read fails over to each
// replica in turn; if every copy fails against a layout the repair plane
// has since replaced, the read remaps and retries once.
func (r *Region) ReadAt(ctx context.Context, off uint64, buf *Buf, bufOff, n int) (IOStat, error) {
	st, err := r.readAtOnce(ctx, off, buf, bufOff, n)
	if err == nil || !r.remapFreshGeneration(ctx, err) {
		return st, err
	}
	st, rerr := r.readAtOnce(ctx, off, buf, bufOff, n)
	if rerr != nil {
		return st, fmt.Errorf("%w: %v (after %v)", ErrStaleGeneration, rerr, err)
	}
	return st, nil
}

func (r *Region) readAtOnce(ctx context.Context, off uint64, buf *Buf, bufOff, n int) (IOStat, error) {
	p, err := r.StartReadAt(ctx, off, buf, bufOff, n)
	if err != nil {
		return IOStat{}, err
	}
	st, err := p.Wait(ctx)
	info := r.Info()
	if err == nil || len(info.Replicas) == 0 || errors.Is(err, ErrRegionClosed) {
		return st, err
	}
	for i := range info.Replicas {
		frags, ferr := info.ReplicaFragments(i, off, n)
		if ferr != nil {
			continue
		}
		// The failover attempt joins the failed op's trace with its own
		// envelope span, so the assembled tree shows the failed primary
		// read followed by the replica read that served the data.
		fot := p.ot
		if fot.id != 0 {
			fot.span = r.c.tracer.NewSpan()
		}
		op := r.newOp(len(frags))
		op.setTrace(fot.id, fot.span, "io.read", r.c.tracer.NewSpan)
		r.issue(ctx, rdma.OpRead, frags, buf, bufOff, op)
		if st, rerr := op.wait(ctx, len(frags)); rerr == nil {
			r.c.ctr.readFailovers.Inc()
			r.c.recordOp(opRead, fot, st, nil, op.takeSpans())
			return st, nil
		}
	}
	return IOStat{}, fmt.Errorf("read %q: all copies failed: %w", info.Name, err)
}

// remapFreshGeneration checks whether a failed one-sided access can be
// explained by a repair-plane layout change: it remaps and reports whether
// the region's generation advanced past the snapshot the failed operation
// used. True means the caller should retry once against the fresh layout.
func (r *Region) remapFreshGeneration(ctx context.Context, err error) bool {
	if errors.Is(err, ErrRegionClosed) {
		return false
	}
	gen := r.Info().Generation
	if rerr := r.Remap(ctx); rerr != nil {
		return false
	}
	if r.Info().Generation == gen {
		return false
	}
	r.c.ctr.staleRemaps.Inc()
	return true
}

// Write copies p into the region at off via an internal staging buffer.
// Zero-copy callers should use WriteAt with a registered Buf instead.
func (r *Region) Write(ctx context.Context, off uint64, p []byte) error {
	for len(p) > 0 {
		st := r.c.acquireStaging()
		n := len(p)
		if n > st.Len() {
			n = st.Len()
		}
		copy(st.Bytes()[:n], p[:n])
		_, err := r.WriteAt(ctx, off, st, 0, n)
		r.c.releaseStaging(st)
		if err != nil {
			return err
		}
		off += uint64(n)
		p = p[n:]
	}
	return nil
}

// Read copies [off, off+len(p)) of the region into p via an internal
// staging buffer.
func (r *Region) Read(ctx context.Context, off uint64, p []byte) error {
	for len(p) > 0 {
		st := r.c.acquireStaging()
		n := len(p)
		if n > st.Len() {
			n = st.Len()
		}
		_, err := r.ReadAt(ctx, off, st, 0, n)
		if err != nil {
			r.c.releaseStaging(st)
			return err
		}
		copy(p[:n], st.Bytes()[:n])
		r.c.releaseStaging(st)
		off += uint64(n)
		p = p[n:]
	}
	return nil
}

// atomicFragment resolves the single fragment holding the 8-byte word at
// off; the word must not straddle a stripe boundary.
func (r *Region) atomicFragment(off uint64) (proto.Fragment, error) {
	frags, err := r.Info().Fragments(off, 8)
	if err != nil {
		return proto.Fragment{}, err
	}
	if len(frags) != 1 {
		return proto.Fragment{}, fmt.Errorf("%w: atomic at %d straddles a stripe boundary", proto.ErrBadRange, off)
	}
	return frags[0], nil
}

// FetchAdd atomically adds delta to the 8-byte little-endian word at off
// (primary copy) and returns the prior value. Atomicity holds against all
// other RStore atomics targeting the same server.
func (r *Region) FetchAdd(ctx context.Context, off uint64, delta uint64) (uint64, IOStat, error) {
	return r.atomic(ctx, rdma.OpFetchAdd, off, delta, 0, 0)
}

// CompareSwap atomically replaces the word at off with swap if it equals
// cmp, returning the prior value.
func (r *Region) CompareSwap(ctx context.Context, off uint64, cmp, swap uint64) (uint64, IOStat, error) {
	return r.atomic(ctx, rdma.OpCmpSwap, off, cmp, cmp, swap)
}

func (r *Region) atomic(ctx context.Context, opcode rdma.OpCode, off uint64, add, cmp, swap uint64) (uint64, IOStat, error) {
	old, st, err := r.atomicOnce(ctx, opcode, off, add, cmp, swap)
	if err == nil || !r.remapFreshGeneration(ctx, err) {
		return old, st, err
	}
	old, st, rerr := r.atomicOnce(ctx, opcode, off, add, cmp, swap)
	if rerr != nil {
		return old, st, fmt.Errorf("%w: %v (after %v)", ErrStaleGeneration, rerr, err)
	}
	return old, st, nil
}

func (r *Region) atomicOnce(ctx context.Context, opcode rdma.OpCode, off uint64, add, cmp, swap uint64) (uint64, IOStat, error) {
	p, err := r.startAtomic(ctx, opcode, off, add, cmp, swap)
	if err != nil {
		return 0, IOStat{}, err
	}
	return p.Wait(ctx)
}

// AtomicPending is an in-flight asynchronous atomic. Unlike writes, an
// atomic always targets exactly one word on one server, so there is a
// single future; Wait returns the word's prior value.
type AtomicPending struct {
	c      *Client
	op     *ioOp
	ot     opTrace
	st     *Buf // staging word, released on Wait
	pooled bool // st belongs to the shared staging pool
}

// StartFetchAdd begins an asynchronous FETCH_ADD on the word at off.
// Issuing several independent atomics before waiting overlaps their
// round-trips — the transaction layer's lock and unlock fan-outs depend
// on this.
func (r *Region) StartFetchAdd(ctx context.Context, off uint64, delta uint64) (*AtomicPending, error) {
	return r.startAtomic(ctx, rdma.OpFetchAdd, off, delta, 0, 0)
}

// StartCompareSwap begins an asynchronous CMP_SWAP on the word at off.
func (r *Region) StartCompareSwap(ctx context.Context, off uint64, cmp, swap uint64) (*AtomicPending, error) {
	return r.startAtomic(ctx, rdma.OpCmpSwap, off, cmp, cmp, swap)
}

func (r *Region) startAtomic(ctx context.Context, opcode rdma.OpCode, off uint64, add, cmp, swap uint64) (*AtomicPending, error) {
	if err := r.checkMapped(); err != nil {
		return nil, err
	}
	r.refreshIfStale(ctx)
	frag, err := r.atomicFragment(off)
	if err != nil {
		return nil, fmt.Errorf("atomic %q: %w", r.Info().Name, err)
	}
	sc, err := r.c.serverConn(ctx, frag.Server)
	if err != nil {
		return nil, fmt.Errorf("atomic %q: %w", r.Info().Name, err)
	}
	st, pooled, err := r.c.acquireAtomicStaging()
	if err != nil {
		return nil, fmt.Errorf("atomic %q: %w", r.Info().Name, err)
	}
	ot := r.c.startOp(ctx)
	op := r.newOp(1)
	op.setTrace(ot.id, ot.span, "io.atomic", r.c.tracer.NewSpan)
	wr := rdma.SendWR{
		Op:         opcode,
		Local:      rdma.SGE{MR: st.mr, Len: 8},
		RemoteKey:  frag.RKey,
		RemoteAddr: frag.Addr,
		Add:        add,
		Compare:    cmp,
		Swap:       swap,
		StartV:     op.startV,
	}
	if err := sc.post(wr, op); err != nil {
		r.c.releaseAtomicStaging(st, pooled)
		return nil, fmt.Errorf("atomic %q: %w", r.Info().Name, err)
	}
	return &AtomicPending{c: r.c, op: op, ot: ot, st: st, pooled: pooled}, nil
}

// Wait blocks until the atomic completes and returns the prior value of
// the word. It must be called exactly once.
func (p *AtomicPending) Wait(ctx context.Context) (uint64, IOStat, error) {
	stat, err := p.op.wait(ctx, 1)
	p.c.recordOp(opAtomic, p.ot, stat, err, p.op.takeSpans())
	p.c.releaseAtomicStaging(p.st, p.pooled)
	if err != nil {
		return 0, IOStat{}, err
	}
	p.op.mu.Lock()
	old := p.op.old
	p.op.mu.Unlock()
	return old, stat, nil
}
