package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/telemetry"
)

// Region is a mapped region: the client-side handle of a named, striped
// window of cluster DRAM. All methods are safe for concurrent use.
type Region struct {
	c *Client
	// info holds the current metadata snapshot; Remap swaps in a fresh one
	// atomically so in-flight operations keep a consistent view.
	info atomic.Pointer[proto.RegionInfo]

	mu       sync.Mutex
	unmapped bool
}

func newRegion(c *Client, info *proto.RegionInfo) *Region {
	r := &Region{c: c}
	r.info.Store(info)
	return r
}

// Info returns the region's current metadata snapshot.
func (r *Region) Info() *proto.RegionInfo { return r.info.Load() }

// Name returns the region's name.
func (r *Region) Name() string { return r.Info().Name }

// Size returns the region's size in bytes.
func (r *Region) Size() uint64 { return r.Info().Size }

// Remap refetches the region's metadata from the master and re-establishes
// server connections (the recovery step after a memory-server bounce). It
// is idempotent — the master does not count it as an additional mapping —
// so callers retry it freely. Data written before the failure is NOT
// recovered unless the region has replicas; Remap restores access, not
// contents. Returns ErrRegionLost when a participating server is
// unreachable and the master has declared it dead.
func (r *Region) Remap(ctx context.Context) error {
	if err := r.checkMapped(); err != nil {
		return err
	}
	r.c.ctr.remaps.Inc()
	name := r.Info().Name
	var e rpc.Encoder
	e.String(name)
	resp, err := r.c.call(ctx, proto.MtRemap, e.Bytes())
	if err != nil {
		return fmt.Errorf("remap %q: %w", name, err)
	}
	d := rpc.NewDecoder(resp)
	info := proto.DecodeRegionInfo(d)
	if derr := d.Err(); derr != nil {
		return fmt.Errorf("remap %q: %w", name, derr)
	}
	if err := r.c.connectRegion(ctx, info); err != nil {
		return fmt.Errorf("remap %q: %w", name, err)
	}
	r.info.Store(info)
	return nil
}

// Unmap detaches from the region (the paper's runmap). Data-path calls
// fail afterwards; the region itself lives on until Free.
func (r *Region) Unmap(ctx context.Context) error {
	r.mu.Lock()
	if r.unmapped {
		r.mu.Unlock()
		return nil
	}
	r.unmapped = true
	r.mu.Unlock()
	name := r.Info().Name
	var e rpc.Encoder
	e.String(name)
	if _, err := r.c.call(ctx, proto.MtUnmap, e.Bytes()); err != nil {
		return fmt.Errorf("unmap %q: %w", name, err)
	}
	return nil
}

func (r *Region) checkMapped() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.unmapped {
		return fmt.Errorf("%w: %q", ErrRegionClosed, r.Info().Name)
	}
	return nil
}

// Pending is an in-flight asynchronous operation.
type Pending struct {
	op    *ioOp
	frags int
	c     *Client
	kind  opKind
	trace telemetry.TraceID
}

// Wait blocks until the operation completes and returns its stats. Both
// synchronous wrappers funnel through here, so this is where an
// operation's outcome and latency reach the client's telemetry.
func (p *Pending) Wait(ctx context.Context) (IOStat, error) {
	st, err := p.op.wait(ctx, p.frags)
	if p.c != nil {
		p.c.recordOp(p.kind, p.trace, st, err)
	}
	return st, err
}

// issue posts one one-sided op per fragment against the shared futures.
// Every fragment is timestamped with the operation's start (the client's
// virtual clock), so per-QP cursors cannot leak earlier times into the
// operation's latency.
func (r *Region) issue(ctx context.Context, opcode rdma.OpCode, frags []proto.Fragment, buf *Buf, bufOff int, op *ioOp) {
	for i, f := range frags {
		sc, err := r.c.serverConn(ctx, f.Server)
		if err != nil {
			op.fail(fmt.Errorf("%w: %v", ErrIOFailed, err), len(frags)-i)
			return
		}
		wr := rdma.SendWR{
			Op:         opcode,
			Local:      rdma.SGE{MR: buf.mr, Offset: uint64(bufOff + f.BufOff), Len: f.Len},
			RemoteKey:  f.RKey,
			RemoteAddr: f.Addr,
			StartV:     op.startV,
		}
		if err := sc.post(wr, op); err != nil {
			op.fail(fmt.Errorf("%w: %v", ErrIOFailed, err), len(frags)-i)
			return
		}
	}
}

// newOp creates a future stamped at the client's current virtual time.
func (r *Region) newOp(fragments int) *ioOp {
	return newIOOp(fragments, r.c.VNow(), r.c.advanceVNow)
}

// StartWriteAt begins an asynchronous write of buf[bufOff:bufOff+n] into
// the region at off. With replicas configured, the write goes to every
// copy (write-through) inside the same pending operation.
func (r *Region) StartWriteAt(ctx context.Context, off uint64, buf *Buf, bufOff, n int) (*Pending, error) {
	if err := r.checkMapped(); err != nil {
		return nil, err
	}
	info := r.Info()
	frags, err := info.Fragments(off, n)
	if err != nil {
		return nil, fmt.Errorf("write %q: %w", info.Name, err)
	}
	all := frags
	for i := range info.Replicas {
		rf, err := info.ReplicaFragments(i, off, n)
		if err != nil {
			return nil, fmt.Errorf("write %q replica %d: %w", info.Name, i, err)
		}
		all = append(all, rf...)
	}
	op := r.newOp(len(all))
	r.issue(ctx, rdma.OpWrite, all, buf, bufOff, op)
	return &Pending{op: op, frags: len(all), c: r.c, kind: opWrite, trace: r.c.traceRoot(ctx)}, nil
}

// WriteAt writes buf[bufOff:bufOff+n] to the region at off, zero copy.
func (r *Region) WriteAt(ctx context.Context, off uint64, buf *Buf, bufOff, n int) (IOStat, error) {
	p, err := r.StartWriteAt(ctx, off, buf, bufOff, n)
	if err != nil {
		return IOStat{}, err
	}
	return p.Wait(ctx)
}

// StartReadAt begins an asynchronous read of [off, off+n) into
// buf[bufOff:].
func (r *Region) StartReadAt(ctx context.Context, off uint64, buf *Buf, bufOff, n int) (*Pending, error) {
	if err := r.checkMapped(); err != nil {
		return nil, err
	}
	frags, err := r.Info().Fragments(off, n)
	if err != nil {
		return nil, fmt.Errorf("read %q: %w", r.Info().Name, err)
	}
	op := r.newOp(len(frags))
	r.issue(ctx, rdma.OpRead, frags, buf, bufOff, op)
	return &Pending{op: op, frags: len(frags), c: r.c, kind: opRead, trace: r.c.traceRoot(ctx)}, nil
}

// ReadAt reads [off, off+n) into buf[bufOff:], zero copy. If the primary
// copy fails and the region has replicas, the read fails over to each
// replica in turn.
func (r *Region) ReadAt(ctx context.Context, off uint64, buf *Buf, bufOff, n int) (IOStat, error) {
	p, err := r.StartReadAt(ctx, off, buf, bufOff, n)
	if err != nil {
		return IOStat{}, err
	}
	st, err := p.Wait(ctx)
	info := r.Info()
	if err == nil || len(info.Replicas) == 0 || errors.Is(err, ErrRegionClosed) {
		return st, err
	}
	for i := range info.Replicas {
		frags, ferr := info.ReplicaFragments(i, off, n)
		if ferr != nil {
			continue
		}
		op := r.newOp(len(frags))
		r.issue(ctx, rdma.OpRead, frags, buf, bufOff, op)
		if st, rerr := op.wait(ctx, len(frags)); rerr == nil {
			r.c.recordOp(opRead, telemetry.TraceFrom(ctx), st, nil)
			return st, nil
		}
	}
	return IOStat{}, fmt.Errorf("read %q: all copies failed: %w", info.Name, err)
}

// Write copies p into the region at off via an internal staging buffer.
// Zero-copy callers should use WriteAt with a registered Buf instead.
func (r *Region) Write(ctx context.Context, off uint64, p []byte) error {
	for len(p) > 0 {
		st := r.c.acquireStaging()
		n := len(p)
		if n > st.Len() {
			n = st.Len()
		}
		copy(st.Bytes()[:n], p[:n])
		_, err := r.WriteAt(ctx, off, st, 0, n)
		r.c.releaseStaging(st)
		if err != nil {
			return err
		}
		off += uint64(n)
		p = p[n:]
	}
	return nil
}

// Read copies [off, off+len(p)) of the region into p via an internal
// staging buffer.
func (r *Region) Read(ctx context.Context, off uint64, p []byte) error {
	for len(p) > 0 {
		st := r.c.acquireStaging()
		n := len(p)
		if n > st.Len() {
			n = st.Len()
		}
		_, err := r.ReadAt(ctx, off, st, 0, n)
		if err != nil {
			r.c.releaseStaging(st)
			return err
		}
		copy(p[:n], st.Bytes()[:n])
		r.c.releaseStaging(st)
		off += uint64(n)
		p = p[n:]
	}
	return nil
}

// atomicFragment resolves the single fragment holding the 8-byte word at
// off; the word must not straddle a stripe boundary.
func (r *Region) atomicFragment(off uint64) (proto.Fragment, error) {
	frags, err := r.Info().Fragments(off, 8)
	if err != nil {
		return proto.Fragment{}, err
	}
	if len(frags) != 1 {
		return proto.Fragment{}, fmt.Errorf("%w: atomic at %d straddles a stripe boundary", proto.ErrBadRange, off)
	}
	return frags[0], nil
}

// FetchAdd atomically adds delta to the 8-byte little-endian word at off
// (primary copy) and returns the prior value. Atomicity holds against all
// other RStore atomics targeting the same server.
func (r *Region) FetchAdd(ctx context.Context, off uint64, delta uint64) (uint64, IOStat, error) {
	return r.atomic(ctx, rdma.OpFetchAdd, off, delta, 0, 0)
}

// CompareSwap atomically replaces the word at off with swap if it equals
// cmp, returning the prior value.
func (r *Region) CompareSwap(ctx context.Context, off uint64, cmp, swap uint64) (uint64, IOStat, error) {
	return r.atomic(ctx, rdma.OpCmpSwap, off, cmp, cmp, swap)
}

func (r *Region) atomic(ctx context.Context, opcode rdma.OpCode, off uint64, add, cmp, swap uint64) (uint64, IOStat, error) {
	if err := r.checkMapped(); err != nil {
		return 0, IOStat{}, err
	}
	frag, err := r.atomicFragment(off)
	if err != nil {
		return 0, IOStat{}, fmt.Errorf("atomic %q: %w", r.Info().Name, err)
	}
	sc, err := r.c.serverConn(ctx, frag.Server)
	if err != nil {
		return 0, IOStat{}, fmt.Errorf("atomic %q: %w", r.Info().Name, err)
	}
	st := r.c.acquireStaging()
	defer r.c.releaseStaging(st)
	op := r.newOp(1)
	wr := rdma.SendWR{
		Op:         opcode,
		Local:      rdma.SGE{MR: st.mr, Len: 8},
		RemoteKey:  frag.RKey,
		RemoteAddr: frag.Addr,
		Add:        add,
		Compare:    cmp,
		Swap:       swap,
		StartV:     op.startV,
	}
	if err := sc.post(wr, op); err != nil {
		return 0, IOStat{}, fmt.Errorf("atomic %q: %w", r.Info().Name, err)
	}
	stat, err := op.wait(ctx, 1)
	r.c.recordOp(opAtomic, r.c.traceRoot(ctx), stat, err)
	if err != nil {
		return 0, IOStat{}, err
	}
	op.mu.Lock()
	old := op.old
	op.mu.Unlock()
	return old, stat, nil
}
