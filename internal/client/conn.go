package client

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"rstore/internal/rdma"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// atomicVTime is a monotonically increasing virtual-time cell.
type atomicVTime struct {
	v atomic.Int64
}

func (a *atomicVTime) load() simnet.VTime { return simnet.VTime(a.v.Load()) }

func (a *atomicVTime) max(t simnet.VTime) {
	for {
		cur := a.v.Load()
		if int64(t) <= cur || a.v.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// ioOp is a future covering all fragments of one data-path operation.
type ioOp struct {
	mu        sync.Mutex
	remaining int
	err       error
	startV    simnet.VTime // caller's virtual time at issue
	lastDone  simnet.VTime
	old       uint64 // atomic result (single-fragment ops)
	done      chan struct{}
	// onDone receives the operation's completion time (last fragment) to
	// advance the owning client's virtual clock.
	onDone func(simnet.VTime)

	// Tracing: when trace is non-zero, every fragment completion buffers
	// an io.* span tagged with its target server. Spans are buffered in
	// the op (not recorded immediately) so provisional traces — minted
	// only in case the flight recorder promotes the op — cost the tracer
	// nothing unless the op turns out slow.
	trace  telemetry.TraceID
	parent telemetry.SpanID // the op's envelope span
	ioName string           // "io.read" / "io.write" / "io.atomic"
	mint   func() telemetry.SpanID
	spans  []telemetry.Span
}

func newIOOp(fragments int, startV simnet.VTime, onDone func(simnet.VTime)) *ioOp {
	return &ioOp{remaining: fragments, startV: startV, onDone: onDone, done: make(chan struct{})}
}

// setTrace arms per-fragment span collection. Must be called before the
// op's fragments are posted.
func (op *ioOp) setTrace(trace telemetry.TraceID, parent telemetry.SpanID, name string, mint func() telemetry.SpanID) {
	op.trace = trace
	op.parent = parent
	op.ioName = name
	op.mint = mint
}

// takeSpans drains the buffered fragment spans.
func (op *ioOp) takeSpans() []telemetry.Span {
	op.mu.Lock()
	defer op.mu.Unlock()
	spans := op.spans
	op.spans = nil
	return spans
}

// completeOne folds one work completion into the future. server is the
// node the fragment targeted (for span attribution).
func (op *ioOp) completeOne(wc rdma.WC, server simnet.NodeID) {
	op.mu.Lock()
	if wc.Status != rdma.StatusSuccess && op.err == nil {
		if wc.Err != nil {
			op.err = fmt.Errorf("%w: %v: %v", ErrIOFailed, wc.Status, wc.Err)
		} else {
			op.err = fmt.Errorf("%w: %v", ErrIOFailed, wc.Status)
		}
	}
	if wc.DoneV > op.lastDone {
		op.lastDone = wc.DoneV
	}
	if op.trace != 0 {
		sp := telemetry.Span{
			Trace:  op.trace,
			Parent: op.parent,
			Name:   op.ioName,
			Node:   server,
			StartV: op.startV,
			EndV:   wc.DoneV,
		}
		if op.mint != nil {
			sp.ID = op.mint()
		}
		if sp.EndV < sp.StartV {
			sp.EndV = sp.StartV // flushed completions carry no DoneV
		}
		if wc.Status != rdma.StatusSuccess {
			sp.Err = wc.Status.String()
		}
		op.spans = append(op.spans, sp)
	}
	op.old = wc.Old
	op.remaining--
	finished := op.remaining == 0
	lastDone := op.lastDone
	onDone := op.onDone
	op.mu.Unlock()
	if finished {
		if onDone != nil {
			onDone(lastDone)
		}
		close(op.done)
	}
}

// fail aborts the future before all fragments posted (post error).
func (op *ioOp) fail(err error, unposted int) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if op.err == nil {
		op.err = err
	}
	op.remaining -= unposted
	if op.remaining <= 0 && op.done != nil {
		select {
		case <-op.done:
		default:
			close(op.done)
		}
	}
}

// IOStat describes one completed data-path operation in virtual time.
type IOStat struct {
	// Fragments is how many one-sided operations the access translated to.
	Fragments int
	// PostedV and DoneV bound the operation in modeled time; DoneV-PostedV
	// is its modeled latency.
	PostedV simnet.VTime
	DoneV   simnet.VTime
}

// Latency returns the modeled service time.
func (s IOStat) Latency() simnet.VTime { return s.DoneV - s.PostedV }

// wait blocks until every fragment completed or ctx fires.
func (op *ioOp) wait(ctx context.Context, fragments int) (IOStat, error) {
	select {
	case <-op.done:
	case <-ctx.Done():
		return IOStat{}, fmt.Errorf("%w: %v", ErrIOFailed, ctx.Err())
	}
	op.mu.Lock()
	defer op.mu.Unlock()
	if op.err != nil {
		return IOStat{}, op.err
	}
	return IOStat{Fragments: fragments, PostedV: op.startV, DoneV: op.lastDone}, nil
}

// serverConn owns the one-sided QP to one memory server plus the
// completion dispatcher that resolves futures.
type serverConn struct {
	qp *rdma.QP
	// node is the memory server this connection targets; fragment spans
	// are attributed to it.
	node simnet.NodeID
	// epoch is the master's incarnation counter for the server at dial
	// time. A later snapshot with a higher epoch means the server bounced:
	// the peer QP and arena behind this connection no longer exist, so the
	// connection must be replaced even though the local QP still looks ready.
	epoch uint64

	mu      sync.Mutex
	nextWR  uint64
	pending map[uint64]*ioOp

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func newServerConn(qp *rdma.QP) *serverConn {
	ctx, cancel := context.WithCancel(context.Background())
	sc := &serverConn{
		qp:      qp,
		node:    qp.RemoteNode(),
		pending: make(map[uint64]*ioOp),
		cancel:  cancel,
	}
	sc.wg.Add(1)
	go sc.dispatch(ctx)
	return sc
}

func (sc *serverConn) healthy() bool {
	return sc.qp.State() == rdma.QPReady
}

func (sc *serverConn) close() {
	sc.cancel()
	sc.qp.Close()
	sc.wg.Wait()
	// Fail anything still pending (flushed completions normally cover
	// this; belt and braces for dispatcher teardown races).
	sc.mu.Lock()
	pend := sc.pending
	sc.pending = make(map[uint64]*ioOp)
	sc.mu.Unlock()
	for _, op := range pend {
		op.completeOne(rdma.WC{Status: rdma.StatusFlushed, Err: rdma.ErrQPState}, sc.node)
	}
}

// dispatch resolves completions to futures.
func (sc *serverConn) dispatch(ctx context.Context) {
	defer sc.wg.Done()
	cq := sc.qp.SendCQ()
	for {
		wc, err := cq.Next(ctx)
		if err != nil {
			return
		}
		sc.mu.Lock()
		op, ok := sc.pending[wc.WRID]
		delete(sc.pending, wc.WRID)
		sc.mu.Unlock()
		if ok {
			op.completeOne(wc, sc.node)
		}
	}
}

// post registers the WR with the future and posts it.
func (sc *serverConn) post(wr rdma.SendWR, op *ioOp) error {
	sc.mu.Lock()
	sc.nextWR++
	wr.WRID = sc.nextWR
	sc.pending[wr.WRID] = op
	sc.mu.Unlock()
	if err := sc.qp.PostSend(wr); err != nil {
		sc.mu.Lock()
		delete(sc.pending, wr.WRID)
		sc.mu.Unlock()
		return err
	}
	return nil
}
