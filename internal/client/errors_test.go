package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"rstore/internal/master"
	"rstore/internal/memserver"
	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/simnet"
)

// testCluster boots a minimal cluster — master on node 0, memory servers on
// nodes 1..servers — and returns the fabric plus a connected client on the
// last node.
func testCluster(t *testing.T, servers int) (*simnet.Fabric, *Client) {
	t.Helper()
	f := simnet.NewFabric(servers+2, simnet.DefaultParams())
	n := rdma.NewNetwork(f)
	ctx := context.Background()

	md, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice master: %v", err)
	}
	m, err := master.Start(md, master.Config{HeartbeatInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("master.Start: %v", err)
	}
	t.Cleanup(m.Close)

	for i := 1; i <= servers; i++ {
		dev, err := n.OpenDevice(simnet.NodeID(i))
		if err != nil {
			t.Fatalf("OpenDevice server %d: %v", i, err)
		}
		srv, err := memserver.Start(ctx, dev, memserver.Config{
			Capacity:          8 << 20,
			Master:            0,
			HeartbeatInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("memserver.Start %d: %v", i, err)
		}
		t.Cleanup(srv.Close)
	}

	cd, err := n.OpenDevice(simnet.NodeID(servers + 1))
	if err != nil {
		t.Fatalf("OpenDevice client: %v", err)
	}
	cli, err := Connect(ctx, cd, Config{
		Master: 0,
		Retry: RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
			Seed:        1,
		},
	})
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	t.Cleanup(cli.Close)
	return f, cli
}

func TestRegionOutOfRangeAndAtomicStraddle(t *testing.T) {
	_, cli := testCluster(t, 2)
	ctx := context.Background()
	reg, err := cli.AllocMap(ctx, "ranges", 2<<20, AllocOptions{StripeUnit: 1 << 20})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	buf, err := cli.AllocBuf(4096)
	if err != nil {
		t.Fatalf("AllocBuf: %v", err)
	}

	if _, err := reg.WriteAt(ctx, 2<<20, buf, 0, 1); !errors.Is(err, proto.ErrBadRange) {
		t.Errorf("write past end = %v, want ErrBadRange", err)
	}
	if _, err := reg.ReadAt(ctx, (2<<20)-1, buf, 0, 2); !errors.Is(err, proto.ErrBadRange) {
		t.Errorf("read across end = %v, want ErrBadRange", err)
	}
	// An 8-byte atomic straddling the stripe boundary cannot be served by a
	// single one-sided operation.
	if _, _, err := reg.FetchAdd(ctx, (1<<20)-4, 1); !errors.Is(err, proto.ErrBadRange) {
		t.Errorf("straddling atomic = %v, want ErrBadRange", err)
	}
	// Aligned atomics on either side of the boundary work.
	if _, _, err := reg.FetchAdd(ctx, (1<<20)-8, 1); err != nil {
		t.Errorf("aligned atomic: %v", err)
	}
}

func TestRegionOpsAfterUnmap(t *testing.T) {
	_, cli := testCluster(t, 1)
	ctx := context.Background()
	reg, err := cli.AllocMap(ctx, "unmapped", 1<<20, AllocOptions{})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	buf, err := cli.AllocBuf(64)
	if err != nil {
		t.Fatalf("AllocBuf: %v", err)
	}
	if err := reg.Unmap(ctx); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	// Unmap is idempotent.
	if err := reg.Unmap(ctx); err != nil {
		t.Errorf("second Unmap: %v", err)
	}

	if _, err := reg.WriteAt(ctx, 0, buf, 0, 8); !errors.Is(err, ErrRegionClosed) {
		t.Errorf("WriteAt after unmap = %v, want ErrRegionClosed", err)
	}
	if _, err := reg.ReadAt(ctx, 0, buf, 0, 8); !errors.Is(err, ErrRegionClosed) {
		t.Errorf("ReadAt after unmap = %v, want ErrRegionClosed", err)
	}
	if _, _, err := reg.FetchAdd(ctx, 0, 1); !errors.Is(err, ErrRegionClosed) {
		t.Errorf("FetchAdd after unmap = %v, want ErrRegionClosed", err)
	}
	if err := reg.Remap(ctx); !errors.Is(err, ErrRegionClosed) {
		t.Errorf("Remap after unmap = %v, want ErrRegionClosed", err)
	}
	if _, _, err := reg.Subscribe(ctx); !errors.Is(err, ErrRegionClosed) {
		t.Errorf("Subscribe after unmap = %v, want ErrRegionClosed", err)
	}
	if err := reg.Notify(ctx, 1); !errors.Is(err, ErrRegionClosed) {
		t.Errorf("Notify after unmap = %v, want ErrRegionClosed", err)
	}
}

func TestWriteToKilledServerIsTyped(t *testing.T) {
	f, cli := testCluster(t, 1)
	ctx := context.Background()
	reg, err := cli.AllocMap(ctx, "doomed", 1<<20, AllocOptions{StripeWidth: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	buf, err := cli.AllocBuf(4096)
	if err != nil {
		t.Fatalf("AllocBuf: %v", err)
	}
	victim := reg.Info().Servers()[0]
	if err := f.SetNodeUp(victim, false); err != nil {
		t.Fatalf("SetNodeUp: %v", err)
	}
	// The data path fails fast with the typed IO error — no retry policy, no
	// hang, per the paper's fast-path philosophy.
	if _, err := reg.WriteAt(ctx, 0, buf, 0, 4096); !errors.Is(err, ErrIOFailed) {
		t.Errorf("write to killed server = %v, want ErrIOFailed", err)
	}
}

// TestMasterUnavailableTyped: with the whole master group unreachable,
// control-plane calls fail fast — bounded by the retry budget, no hang —
// with the typed ErrMasterUnavailable sentinel, while the one-sided data
// path keeps serving off the cached layout (the master is not on it).
func TestMasterUnavailableTyped(t *testing.T) {
	f, cli := testCluster(t, 1)
	ctx := context.Background()
	reg, err := cli.AllocMap(ctx, "outage", 1<<20, AllocOptions{StripeWidth: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	buf, err := cli.AllocBuf(4096)
	if err != nil {
		t.Fatalf("AllocBuf: %v", err)
	}

	if err := f.SetNodeUp(0, false); err != nil {
		t.Fatalf("SetNodeUp: %v", err)
	}

	start := time.Now()
	if _, err := cli.Alloc(ctx, "unreachable", 1<<20, AllocOptions{}); !errors.Is(err, ErrMasterUnavailable) {
		t.Errorf("Alloc with dead master = %v, want ErrMasterUnavailable", err)
	}
	if _, err := cli.ClusterInfo(ctx); !errors.Is(err, ErrMasterUnavailable) {
		t.Errorf("ClusterInfo with dead master = %v, want ErrMasterUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("control calls blocked %v; the retry budget should bound them", elapsed)
	}

	// The data path needs no master: reads and writes keep flowing.
	if _, err := reg.WriteAt(ctx, 0, buf, 0, 4096); err != nil {
		t.Errorf("WriteAt during master outage: %v", err)
	}
	if _, err := reg.ReadAt(ctx, 0, buf, 0, 4096); err != nil {
		t.Errorf("ReadAt during master outage: %v", err)
	}

	// The status probe degrades row-by-row instead of failing whole.
	sts := cli.MasterStatuses(ctx)
	if len(sts) != 1 {
		t.Fatalf("MasterStatuses rows = %d, want 1", len(sts))
	}
	if !errors.Is(sts[0].Err, ErrMasterUnavailable) {
		t.Errorf("status row err = %v, want ErrMasterUnavailable", sts[0].Err)
	}
}

// TestSubscribeAbortCleansState is the regression test for the subscribe
// handshake leak: a Subscribe that failed (dead home server, expired
// context) used to leave its ack-queue entry and channel registered, so the
// dangling ack entry stole the acknowledgement of the next subscriber.
func TestSubscribeAbortCleansState(t *testing.T) {
	f, cli := testCluster(t, 1)
	ctx := context.Background()
	reg, err := cli.AllocMap(ctx, "subs", 1<<20, AllocOptions{StripeWidth: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	info := reg.Info()
	home := info.HomeServer()

	// A healthy subscribe first, so the notify connection is established and
	// the failure below exercises the handshake, not the dial.
	_, unsub, err := reg.Subscribe(ctx)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	unsub()

	if err := f.SetNodeUp(home, false); err != nil {
		t.Fatalf("SetNodeUp: %v", err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, _, err := reg.Subscribe(shortCtx); err == nil {
		t.Fatal("Subscribe with dead home server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("Subscribe blocked %v past its context deadline", elapsed)
	}

	cli.mu.Lock()
	nc := cli.notify[home]
	cli.mu.Unlock()
	if nc == nil {
		t.Fatal("notify connection missing")
	}
	nc.mu.Lock()
	subs, acks := len(nc.subs[info.ID]), len(nc.acks[info.ID])
	nc.mu.Unlock()
	if subs != 0 {
		t.Errorf("aborted subscribe left %d channels registered", subs)
	}
	if acks != 0 {
		t.Errorf("aborted subscribe left %d ack entries; the next subscriber's ack would be stolen", acks)
	}
}
