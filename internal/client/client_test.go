package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"rstore/internal/rdma"
	"rstore/internal/rpc"
)

func TestControlStatsArithmetic(t *testing.T) {
	a := ControlStats{RPCTime: 10, ConnectTime: 20, RegisterTime: 30, RPCs: 1, Connects: 2, Registers: 3}
	b := ControlStats{RPCTime: 4, ConnectTime: 5, RegisterTime: 6, RPCs: 1, Connects: 1, Registers: 1}
	d := a.Sub(b)
	if d.RPCTime != 6 || d.ConnectTime != 15 || d.RegisterTime != 24 {
		t.Errorf("Sub = %+v", d)
	}
	if d.RPCs != 0 || d.Connects != 1 || d.Registers != 2 {
		t.Errorf("Sub counters = %+v", d)
	}
	if got := a.Total(); got != 60 {
		t.Errorf("Total = %v", got)
	}
}

func TestMapMasterError(t *testing.T) {
	tests := []struct {
		name string
		in   error
		want error
	}{
		{"exists", &rpc.RemoteError{Msg: "master: region already exists: \"x\""}, ErrRegionExists},
		{"not found", &rpc.RemoteError{Msg: "master: region not found: \"x\""}, ErrRegionNotFound},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := mapMasterError(tt.in); !errors.Is(got, tt.want) {
				t.Errorf("mapMasterError = %v, want %v", got, tt.want)
			}
		})
	}
	// Non-remote errors pass through.
	plain := errors.New("plain")
	if got := mapMasterError(plain); got != plain {
		t.Errorf("plain error = %v", got)
	}
	// Unknown remote errors stay remote.
	other := &rpc.RemoteError{Msg: "something else"}
	var re *rpc.RemoteError
	if got := mapMasterError(other); !errors.As(got, &re) {
		t.Errorf("other = %v", got)
	}
}

func TestIOOpCompletion(t *testing.T) {
	var clock atomicVTime
	op := newIOOp(2, 100, clock.max)
	op.completeOne(rdma.WC{Status: rdma.StatusSuccess, PostedV: 100, DoneV: 200}, 1)
	select {
	case <-op.done:
		t.Fatal("done before all fragments")
	default:
	}
	op.completeOne(rdma.WC{Status: rdma.StatusSuccess, PostedV: 150, DoneV: 300}, 1)
	select {
	case <-op.done:
	default:
		t.Fatal("not done after all fragments")
	}
	st, err := op.wait(context.Background(), 2)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.PostedV != 100 || st.DoneV != 300 || st.Fragments != 2 {
		t.Errorf("stat = %+v", st)
	}
	if st.Latency() != 200 {
		t.Errorf("latency = %v", st.Latency())
	}
	if clock.load() != 300 {
		t.Errorf("onDone clock = %v, want 300", clock.load())
	}
}

func TestIOOpErrorPropagates(t *testing.T) {
	op := newIOOp(2, 0, nil)
	op.completeOne(rdma.WC{Status: rdma.StatusRetryExceeded, Err: rdma.ErrQPState}, 1)
	op.completeOne(rdma.WC{Status: rdma.StatusSuccess}, 1)
	if _, err := op.wait(context.Background(), 2); !errors.Is(err, ErrIOFailed) {
		t.Errorf("wait = %v, want ErrIOFailed", err)
	}
}

func TestIOOpFailShortCircuits(t *testing.T) {
	op := newIOOp(3, 0, nil)
	op.completeOne(rdma.WC{Status: rdma.StatusSuccess}, 1)
	op.fail(errors.New("post failed"), 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := op.wait(ctx, 3); err == nil {
		t.Error("wait should fail after fail()")
	}
}

func TestIOOpWaitContextCancel(t *testing.T) {
	op := newIOOp(1, 0, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := op.wait(ctx, 1); !errors.Is(err, ErrIOFailed) {
		t.Errorf("wait = %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.StagingChunk != 1<<20 || c.StagingCount != 4 || c.QPDepth != 512 {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{StagingChunk: 7, StagingCount: 2, QPDepth: 9}.withDefaults()
	if c.StagingChunk != 7 || c.StagingCount != 2 || c.QPDepth != 9 {
		t.Errorf("overrides = %+v", c)
	}
}
