// Package metrics provides the small measurement toolkit used by the
// benchmark harness: log-bucketed latency histograms, throughput
// accounting, and fixed-width table rendering for experiment output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram is a log-bucketed latency histogram. The zero value is ready
// to use. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64 // reservoir for exact quantiles
	seen    int64
}

const reservoirSize = 4096

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) { h.RecordValue(float64(d.Nanoseconds())) }

// RecordValue adds one raw observation.
func (h *Histogram) RecordValue(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.seen++
	if len(h.samples) < reservoirSize {
		h.samples = append(h.samples, v)
	} else {
		// Vitter's algorithm R with a cheap deterministic hash of seen.
		x := uint64(h.seen) * 0x9e3779b97f4a7c15
		x ^= x >> 33
		if idx := x % uint64(h.seen); idx < reservoirSize {
			h.samples[idx] = v
		}
	}
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) from the sample reservoir.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), h.samples...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summary renders count/mean/p50/p99/max with nanosecond observations
// formatted as durations.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(),
		time.Duration(h.Mean()),
		time.Duration(h.Quantile(0.50)),
		time.Duration(h.Quantile(0.99)),
		time.Duration(h.Max()))
}

// Gbps converts bytes moved in a duration to gigabits per second.
func Gbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e9
}

// Table renders experiment output with aligned columns, matching the
// "rows the paper reports" requirement of the harness.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Rows returns the rendered cells (for assertions in tests).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}
