GO ?= go
SEEDS ?= 3

.PHONY: all build test vet race integration verify bench fmt chaos

all: build test

build:
	$(GO) build ./...

# Reformat all Go sources; CI rejects anything gofmt would rewrite.
fmt:
	gofmt -w .

# Tier-1: what every change must keep green.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Chaos / fault-injection suite under the race detector, bounded so a
# recovery bug shows up as a timeout instead of a wedged CI job.
integration:
	$(GO) test -race -timeout 300s ./internal/integration/...

# Seed matrix: re-run the chaos + repair suite under the race detector
# with SEEDS distinct chaos seeds (RSTORE_CHAOS_SEED re-seeds every
# seeded decision — drop patterns, retry jitter). Each seed changes the
# interleavings, never the pass criteria.
chaos:
	for seed in $$(seq 1 $(SEEDS)); do \
		echo "=== chaos seed $$seed ==="; \
		RSTORE_CHAOS_SEED=$$seed $(GO) test -race -timeout 300s -count=1 ./internal/integration/... || exit 1; \
	done

# Tier-2 verification (see README "Verifying"): vet plus the full suite
# under the race detector. Slower than tier-1; run before merging anything
# that touches concurrency or the failure paths.
verify: vet
	$(GO) test -race -timeout 600s ./...

race: verify

bench:
	$(GO) test -bench=. -benchmem
