GO ?= go

.PHONY: all build test vet race integration verify bench fmt

all: build test

build:
	$(GO) build ./...

# Reformat all Go sources; CI rejects anything gofmt would rewrite.
fmt:
	gofmt -w .

# Tier-1: what every change must keep green.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Chaos / fault-injection suite under the race detector, bounded so a
# recovery bug shows up as a timeout instead of a wedged CI job.
integration:
	$(GO) test -race -timeout 300s ./internal/integration/...

# Tier-2 verification (see README "Verifying"): vet plus the full suite
# under the race detector. Slower than tier-1; run before merging anything
# that touches concurrency or the failure paths.
verify: vet
	$(GO) test -race -timeout 600s ./...

race: verify

bench:
	$(GO) test -bench=. -benchmem
